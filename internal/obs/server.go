package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"

	"segscale/internal/modelhealth"
	"segscale/internal/telemetry"
	"segscale/internal/traceanalysis"
	"segscale/internal/transport"
)

// ServerOptions configures the observability HTTP server.
type ServerOptions struct {
	// Addr is the listen address ("127.0.0.1:0" picks a free port;
	// Start returns the resolved URL).
	Addr string
	// Telemetry feeds /metrics (live Prometheus rendering) and
	// /debug/flight (when its flight recorder is enabled). May be nil.
	Telemetry *telemetry.Collector
	// Monitor feeds /debug/alerts and the readiness detail. May be nil.
	Monitor *EffMonitor
	// Attribution feeds /debug/attribution: a live snapshot of the
	// run's step-time attribution ledger. May be nil.
	Attribution *traceanalysis.LedgerRecorder
	// Health feeds /debug/health: a live snapshot of the training-
	// health plane (per-layer statistics, sentinel alerts). May be nil.
	Health *modelhealth.Plane
}

// Server is the live observability endpoint of a run:
//
//	/metrics       Prometheus text, rendered live from the collector
//	/healthz       process liveness (always 200 while serving) + world detail
//	/readyz        503 until a healthy world is tracked (or SetReady), 503 again while a world drains after a rank failure
//	/debug/flight  Chrome-trace dump of the flight recorder's window
//	/debug/alerts  the efficiency monitor's alert log as JSON
//	/debug/pprof/  the standard pprof handlers
//
// World liveness comes from transport incarnation state: the trainer's
// OnWorld hook calls TrackWorld once per incarnation, and /readyz
// reports the *current* incarnation's transport.World.Failure().
type Server struct {
	opts ServerOptions
	mux  *http.ServeMux
	srv  *http.Server

	mu    sync.Mutex
	ln    net.Listener
	world *transport.World
	inc   int
	ready bool
}

// NewServer builds a server (not yet listening; Start does that).
func NewServer(opts ServerOptions) *Server {
	s := &Server{opts: opts, mux: http.NewServeMux()}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/debug/flight", s.handleFlight)
	s.mux.HandleFunc("/debug/alerts", s.handleAlerts)
	s.mux.HandleFunc("/debug/attribution", s.handleAttribution)
	s.mux.HandleFunc("/debug/health", s.handleHealth)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the route mux — what httptest-based scrape tests
// mount.
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on the configured address and serves in a background
// goroutine, returning the resolved base URL (useful with ":0").
func (s *Server) Start() (string, error) {
	ln, err := net.Listen("tcp", s.opts.Addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", s.opts.Addr, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	srv := s.srv
	s.mu.Unlock()
	// Serve returns http.ErrServerClosed (or a listener error) once
	// Close runs; a background observability plane has no one to hand
	// that to.
	go func() { _ = srv.Serve(ln) }()
	return "http://" + ln.Addr().String(), nil
}

// Close stops the listener. Safe to call without Start.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.srv = nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// TrackWorld points liveness at a new world incarnation. A restarted
// incarnation (inc > 0) supersedes the poisoned world it replaces, so
// readiness recovers the moment the trainer rebuilds.
func (s *Server) TrackWorld(w *transport.World, inc int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.world = w
	s.inc = inc
	s.ready = true
	s.mu.Unlock()
}

// SetReady forces readiness for processes with no transport world to
// track (the simulator).
func (s *Server) SetReady(ready bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.ready = ready
	s.mu.Unlock()
}

// worldState snapshots the tracked incarnation.
func (s *Server) worldState() (w *transport.World, inc int, ready bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.world, s.inc, s.ready
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, "segscale observability\n\n/metrics\n/healthz\n/readyz\n/debug/flight\n/debug/alerts\n/debug/attribution\n/debug/health\n/debug/pprof/\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	col := s.opts.Telemetry
	if col == nil {
		http.Error(w, "telemetry disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := col.WritePrometheus(w); err != nil {
		// Headers are gone; all we can do is log into the body.
		fmt.Fprintf(w, "# render error: %v\n", err)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	world, inc, _ := s.worldState()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, "ok\n")
	if world == nil {
		fmt.Fprint(w, "world: none tracked\n")
		return
	}
	fmt.Fprintf(w, "world: size=%d incarnation=%d\n", world.Size(), inc)
	if failed := world.FailedRanks(); len(failed) > 0 {
		sort.Ints(failed)
		fmt.Fprintf(w, "failed ranks: %v\n", failed)
	}
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	world, inc, ready := s.worldState()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !ready {
		http.Error(w, "not ready: no world tracked yet", http.StatusServiceUnavailable)
		return
	}
	if world != nil {
		if err := world.Failure(); err != nil {
			http.Error(w, fmt.Sprintf("not ready (incarnation %d): %v", inc, err),
				http.StatusServiceUnavailable)
			return
		}
	}
	fmt.Fprint(w, "ready\n")
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	f := s.opts.Telemetry.Flight()
	if f == nil {
		http.Error(w, "flight recorder disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := f.WriteChromeTrace(w); err != nil {
		fmt.Fprintf(w, "\n# render error: %v\n", err)
	}
}

func (s *Server) handleAttribution(w http.ResponseWriter, r *http.Request) {
	if s.opts.Attribution == nil {
		http.Error(w, "attribution disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// The snapshot is the same canonical form seg-compare reads from
	// disk, so a live scrape can be diffed against a saved baseline.
	if err := s.opts.Attribution.Ledger().WriteLedger(w); err != nil {
		fmt.Fprintf(w, "\n# render error: %v\n", err)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.opts.Health == nil {
		http.Error(w, "health plane disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	snap := s.opts.Health.Snapshot()
	if snap.Alerts == nil {
		snap.Alerts = []modelhealth.Alert{}
	}
	if snap.Layers == nil {
		snap.Layers = []modelhealth.LayerSummary{}
	}
	_ = enc.Encode(snap)
}

func (s *Server) handleAlerts(w http.ResponseWriter, r *http.Request) {
	if s.opts.Monitor == nil {
		http.Error(w, "efficiency monitor disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	alerts := s.opts.Monitor.Alerts()
	if alerts == nil {
		alerts = []Alert{}
	}
	_ = enc.Encode(struct {
		Efficiency float64 `json:"efficiency"`
		SLO        float64 `json:"slo"`
		Alerts     []Alert `json:"alerts"`
	}{s.opts.Monitor.LastEfficiency(), s.opts.Monitor.SLO(), alerts})
}
