package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"segscale/internal/telemetry"
)

func TestFlushPrometheusAtomic(t *testing.T) {
	col := telemetry.NewCollector()
	col.NewProbe("rank0", telemetry.NewStepClock()).Counter("train_steps_total").Inc()

	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.prom")
	for i := 0; i < 3; i++ { // repeated flushes replace, never append
		if err := FlushPrometheus(col, path); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "train_steps_total") {
		t.Fatalf("flushed metrics missing counter:\n%s", data)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func TestPromFlusherPeriodicAndFinal(t *testing.T) {
	col := telemetry.NewCollector()
	counter := col.NewProbe("rank0", telemetry.NewStepClock()).Counter("train_steps_total")
	path := filepath.Join(t.TempDir(), "metrics.prom")
	fl := NewPromFlusher(col, path, 2)

	counter.Inc()
	fl.ObserveStep("rank0", 0, 1, 0)
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("flushed before the period elapsed")
	}
	fl.ObserveStep("rank0", 1, 1, 0)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no flush after period: %v", err)
	}

	counter.Inc()
	if err := fl.Flush(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if !strings.Contains(string(data), "train_steps_total 2") {
		t.Fatalf("final flush stale:\n%s", data)
	}

	var nilFl *PromFlusher
	nilFl.ObserveStep("x", 0, 1, 0) // nil-safe
	if err := nilFl.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteFlightTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flight.json")
	if err := WriteFlightTrace(nil, path); err != nil {
		t.Fatalf("nil recorder: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("nil recorder wrote a file")
	}

	f := telemetry.NewFlightRecorder(8)
	f.Record(telemetry.FlightEvent{Lane: "rank0", Phase: "STEP", Name: "s0", Start: 1, End: 2})
	if err := WriteFlightTrace(f, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil || len(events) != 1 {
		t.Fatalf("trace dump wrong (%v):\n%s", err, data)
	}
}

func TestWriteManifest(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteManifest(dir, Manifest{}); err == nil {
		t.Fatal("manifest without a tool name must fail")
	}

	m := Manifest{
		Tool: "dlv3-train", GitRev: "abc123", Seed: 7,
		Config:    map[string]any{"world": 4},
		ChaosSpec: "seed=7;crash=1@40", SLO: 0.92, AnchorImgPerSec: 6.7,
		FinalEfficiency: 0.95, Restarts: 1,
		Alerts: []Alert{{Kind: "restart", Msg: "incarnation 1"}},
	}
	path, err := WriteManifest(filepath.Join(dir, "runs"), m) // dir is created
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "dlv3-train-seed7.json" {
		t.Fatalf("manifest name = %s", path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Manifest
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Tool != m.Tool || got.Seed != 7 || got.Restarts != 1 ||
		got.ChaosSpec != m.ChaosSpec || len(got.Alerts) != 1 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}

	// Alerts must serialise as [] not null — downstream tooling indexes
	// the field unconditionally.
	p2, err := WriteManifest(dir, Manifest{Tool: "summit-sim", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(p2)
	if !strings.Contains(string(raw), `"alerts": []`) {
		t.Fatalf("nil alerts serialised as null:\n%s", raw)
	}
}
