package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"segscale/internal/modelhealth"
	"segscale/internal/nn"
	"segscale/internal/telemetry"
	"segscale/internal/tensor"
	"segscale/internal/traceanalysis"
	"segscale/internal/transport"
)

// scrape GETs a path off the test server and returns status + body.
func scrape(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	col := telemetry.NewCollector()
	col.EnableFlight(16)
	probe := col.NewProbe("rank0", telemetry.NewStepClock())
	probe.Counter("train_steps_total").Inc()
	probe.Mark("STEP", "step0")

	mon := NewEffMonitor(col, MonitorConfig{AnchorImgPerSec: 10, Window: 4, EveryK: 1})
	mon.ObserveStep("rank0", 0, 1, 0.1)

	s := NewServer(ServerOptions{Telemetry: col, Monitor: mon})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, body := scrape(t, ts, "/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "# TYPE") || !strings.Contains(body, "train_steps_total") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}
	if code, body := scrape(t, ts, "/healthz"); code != http.StatusOK || !strings.HasPrefix(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	// Not ready until a world (or SetReady) arrives.
	if code, _ := scrape(t, ts, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before TrackWorld = %d, want 503", code)
	}

	w, err := transport.NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	s.TrackWorld(w, 0)
	if code, body := scrape(t, ts, "/readyz"); code != http.StatusOK || !strings.HasPrefix(body, "ready") {
		t.Fatalf("/readyz with healthy world = %d %q", code, body)
	}
	if _, body := scrape(t, ts, "/healthz"); !strings.Contains(body, "size=2") {
		t.Fatalf("/healthz world detail missing: %q", body)
	}

	// A rank failure poisons the incarnation: readiness drops, liveness
	// stays up and names the dead rank.
	w.Comm(1).Kill()
	if code, body := scrape(t, ts, "/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "not ready") {
		t.Fatalf("/readyz after rank failure = %d %q", code, body)
	}
	if code, body := scrape(t, ts, "/healthz"); code != http.StatusOK ||
		!strings.Contains(body, "failed ranks: [1]") {
		t.Fatalf("/healthz after rank failure = %d %q", code, body)
	}

	// Flight dump must be a parseable Chrome trace with the recorded
	// events.
	code, body := scrape(t, ts, "/debug/flight")
	if code != http.StatusOK {
		t.Fatalf("/debug/flight = %d", code)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("flight dump is not a JSON trace: %v\n%s", err, body)
	}
	if len(events) == 0 {
		t.Fatal("flight dump empty despite recorded events")
	}

	code, body = scrape(t, ts, "/debug/alerts")
	if code != http.StatusOK {
		t.Fatalf("/debug/alerts = %d", code)
	}
	var alerts struct {
		Efficiency float64 `json:"efficiency"`
		SLO        float64 `json:"slo"`
		Alerts     []Alert `json:"alerts"`
	}
	if err := json.Unmarshal([]byte(body), &alerts); err != nil {
		t.Fatalf("alerts payload: %v\n%s", err, body)
	}
	if alerts.SLO != DefaultSLO || alerts.Alerts == nil {
		t.Fatalf("alerts payload wrong: %+v", alerts)
	}

	if code, _ := scrape(t, ts, "/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestServerDisabledFeatures(t *testing.T) {
	s := NewServer(ServerOptions{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{"/metrics", "/debug/flight", "/debug/alerts"} {
		if code, _ := scrape(t, ts, path); code != http.StatusNotFound {
			t.Errorf("%s with nothing attached = %d, want 404", path, code)
		}
	}
	// Liveness works even with every feed disabled.
	if code, _ := scrape(t, ts, "/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}
	// SetReady covers producers with no transport world (the simulator).
	s.SetReady(true)
	if code, _ := scrape(t, ts, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after SetReady = %d", code)
	}
}

func TestServerStartServesAndCloses(t *testing.T) {
	s := NewServer(ServerOptions{Addr: "127.0.0.1:0"})
	url, err := s.Start()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatalf("GET started server: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz on started server = %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("server still reachable after Close")
	}
	var nilServer *Server
	nilServer.TrackWorld(nil, 0) // nil receiver must be safe
	nilServer.SetReady(true)
}

func TestServerAttributionEndpoint(t *testing.T) {
	rec := traceanalysis.NewLedgerRecorder("perfsim", 2)
	var b traceanalysis.BucketSet
	b[traceanalysis.BucketForward] = 1.5
	b[traceanalysis.BucketIdleWait] = 0.5
	rec.Record(traceanalysis.StepAttribution{
		Step: 0, Rank: 0, StepSec: b.Sum(), Buckets: b,
		BlameRank: 1, BlameEdge: "1>0#0.0",
	})
	s := NewServer(ServerOptions{Attribution: rec})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := scrape(t, ts, "/debug/attribution")
	if code != http.StatusOK {
		t.Fatalf("/debug/attribution: %d", code)
	}
	l, err := traceanalysis.ReadLedger(strings.NewReader(body))
	if err != nil {
		t.Fatalf("endpoint did not serve a valid ledger: %v", err)
	}
	if l.Ranks != 2 || len(l.Steps) != 1 || l.Steps[0].BlameRank != 1 {
		t.Fatalf("served ledger %+v", l)
	}

	// Disabled: no recorder configured.
	off := httptest.NewServer(NewServer(ServerOptions{}).Handler())
	defer off.Close()
	if code, _ := scrape(t, off, "/debug/attribution"); code != http.StatusNotFound {
		t.Fatalf("disabled attribution endpoint: %d, want 404", code)
	}
}

func TestServerHealthEndpoint(t *testing.T) {
	plane := modelhealth.New(modelhealth.Config{UpdRatioMax: 1e-9})
	c := plane.Rank(0, 0, nil)
	c.BeginStep(4)
	c.CollectUpdate([]*nn.Param{{
		Name: "entry.conv",
		W:    tensor.FromSlice([]float32{1, 2}, 2),
		G:    tensor.FromSlice([]float32{0.5, 0.5}, 2),
	}}, 0.1)
	c.EndStep()

	s := NewServer(ServerOptions{Health: plane})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, body := scrape(t, ts, "/debug/health")
	if code != http.StatusOK {
		t.Fatalf("/debug/health: %d", code)
	}
	var snap modelhealth.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("endpoint did not serve JSON: %v\n%s", err, body)
	}
	if snap.Rows != 1 || snap.LastStep != 4 || snap.SentinelTrips != 1 {
		t.Fatalf("served snapshot %+v", snap)
	}
	if len(snap.Layers) != 1 || snap.Layers[0].Layer != "entry.conv" {
		t.Fatalf("layer summaries %+v", snap.Layers)
	}
	if len(snap.Alerts) != 1 || snap.Alerts[0].Kind != modelhealth.AlertUpdateRatio {
		t.Fatalf("alerts %+v", snap.Alerts)
	}

	// Disabled: no plane configured.
	off := httptest.NewServer(NewServer(ServerOptions{}).Handler())
	defer off.Close()
	if code, _ := scrape(t, off, "/debug/health"); code != http.StatusNotFound {
		t.Fatalf("disabled health endpoint: %d, want 404", code)
	}
}
