package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
)

// Manifest is the run record written under results/runs/ whenever the
// observability plane is armed: enough to answer "what ran, from
// which revision, with what faults, and how well did it scale" from
// the artifact alone.
type Manifest struct {
	// Tool is the producing binary ("dlv3-train", "summit-sim").
	Tool string `json:"tool"`
	// GitRev is the VCS revision baked into the binary ("unknown" for
	// uncommitted `go run` builds).
	GitRev string `json:"git_rev"`
	Seed   int64  `json:"seed"`
	// Config summarises the run configuration (tool-specific keys).
	Config map[string]any `json:"config"`
	// ChaosSpec is the armed fault plan's compact spec ("" when none).
	ChaosSpec string `json:"chaos_spec,omitempty"`
	// SLO / AnchorImgPerSec / FinalEfficiency mirror the efficiency
	// monitor's configuration and last reading.
	SLO             float64 `json:"slo"`
	AnchorImgPerSec float64 `json:"anchor_img_per_sec"`
	FinalEfficiency float64 `json:"final_efficiency"`
	// Restarts counts checkpoint-restart recoveries (real training).
	Restarts int `json:"restarts"`
	// Alerts is the monitor's full structured alert log.
	Alerts []Alert `json:"alerts"`
}

// GitRev returns the module's VCS revision from the build info, or
// "unknown" — the observability plane must not shell out to git.
func GitRev() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" {
				return s.Value
			}
		}
	}
	return "unknown"
}

// WriteManifest writes m atomically as <dir>/<tool>-seed<seed>.json
// (creating dir as needed) and returns the path. Deterministic naming
// makes regeneration idempotent: re-running the same configuration
// replaces its manifest instead of littering.
func WriteManifest(dir string, m Manifest) (string, error) {
	if m.Tool == "" {
		return "", fmt.Errorf("obs: manifest needs a tool name")
	}
	if m.Alerts == nil {
		m.Alerts = []Alert{}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-seed%d.json", m.Tool, m.Seed))
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", err
	}
	err = writeFileAtomic(path, func(w io.Writer) error {
		_, werr := w.Write(append(data, '\n'))
		return werr
	})
	return path, err
}
