// Package checkpoint serialises and restores training state: model
// parameters, batch-norm running statistics, optimiser velocity, and
// progress metadata — what long-running distributed jobs on Summit
// write between job allocations, and what the checkpoint-restart
// recovery path replays after an injected rank failure. The format is
// a small self-describing binary container (magic, version, named
// sections with lengths), written with encoding/binary; no
// reflection, no external deps.
//
// Version 2 adds three section kinds over the v1
// parameters-plus-float32-BN layout: float64 batch-norm statistics
// (v1's float32 truncation loses the low bits, which would break the
// bit-identical-restart invariant), optimiser velocity, and an
// epoch/step metadata record. Readers accept both versions.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"

	"segscale/internal/nn"
)

const (
	magic   = 0x5345_4743 // "SEGC"
	version = 2

	secParam   = 1
	secBNStats = 2 // float32 BN running stats (v1 legacy)
	secOpt     = 3 // optimiser velocity, one section per parameter
	secMeta    = 4 // epoch/step progress record
	secBN64    = 5 // float64 BN running stats (lossless)
	secEnd     = 0xFF
)

// Meta records where training stood when the snapshot was taken.
type Meta struct {
	// Epoch is the number of fully completed epochs.
	Epoch int
	// Step is the number of fully completed global steps.
	Step int
}

// State bundles everything a training job needs to resume
// bit-identically. Params and BNs point at the live model (restored
// in place); Velocity and Meta are optional extras a v1 snapshot
// lacks.
type State struct {
	Params []*nn.Param
	BNs    []*nn.BatchNorm2D
	// Velocity is the optimiser state in Params order (nil = not
	// saved / not present in the file).
	Velocity [][]float32
	// Meta is the progress record (nil = not saved / not present).
	Meta *Meta
}

// Save writes parameters and batch-norm running statistics — the v1
// API, kept for callers that snapshot weights only. The container is
// still version 2 (lossless float64 BN stats).
func Save(w io.Writer, params []*nn.Param, bns []*nn.BatchNorm2D) error {
	return SaveState(w, State{Params: params, BNs: bns})
}

// Load restores parameters and batch-norm statistics written by Save
// or SaveState, ignoring any optimiser/meta sections — the v1 API.
func Load(r io.Reader, params []*nn.Param, bns []*nn.BatchNorm2D) error {
	st := State{Params: params, BNs: bns}
	return LoadState(r, &st)
}

// SaveState writes a full training snapshot to w.
func SaveState(w io.Writer, st State) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw); err != nil {
		return err
	}
	if st.Meta != nil {
		if st.Meta.Epoch < 0 || st.Meta.Step < 0 {
			return fmt.Errorf("checkpoint: negative meta %+v", *st.Meta)
		}
		payload := make([]byte, 8)
		binary.LittleEndian.PutUint32(payload, uint32(st.Meta.Epoch))
		binary.LittleEndian.PutUint32(payload[4:], uint32(st.Meta.Step))
		if err := writeSection(bw, secMeta, "meta", payload); err != nil {
			return err
		}
	}
	for _, p := range st.Params {
		if err := writeSection(bw, secParam, p.Name, f32Bytes(p.W.Data)); err != nil {
			return err
		}
	}
	for i, bn := range st.BNs {
		stats := make([]float64, 0, 2*len(bn.RunningMean))
		stats = append(stats, bn.RunningMean...)
		stats = append(stats, bn.RunningVar...)
		if err := writeSection(bw, secBN64, fmt.Sprintf("bn%d", i), f64Bytes(stats)); err != nil {
			return err
		}
	}
	if st.Velocity != nil {
		if len(st.Velocity) != len(st.Params) {
			return fmt.Errorf("checkpoint: %d velocity tensors for %d parameters",
				len(st.Velocity), len(st.Params))
		}
		for i, v := range st.Velocity {
			if err := writeSection(bw, secOpt, st.Params[i].Name, f32Bytes(v)); err != nil {
				return err
			}
		}
	}
	if err := bw.WriteByte(secEnd); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadState restores a snapshot into st's Params and BNs (which must
// structurally match the writing model — same names, order, lengths)
// and fills st.Velocity and st.Meta when the file carries them.
// Both container versions are accepted; a v1 file restores float32 BN
// statistics and leaves Velocity and Meta nil.
func LoadState(r io.Reader, st *State) error {
	br := bufio.NewReader(r)
	ver, err := readHeader(br)
	if err != nil {
		return err
	}
	st.Velocity = nil
	st.Meta = nil
	var velocity [][]float32
	pi, bi, oi := 0, 0, 0
	for {
		kind, name, raw, err := readSection(br, ver)
		if err != nil {
			return err
		}
		switch kind {
		case secEnd:
			if pi != len(st.Params) || bi != len(st.BNs) {
				return fmt.Errorf("checkpoint: restored %d/%d params, %d/%d batch norms",
					pi, len(st.Params), bi, len(st.BNs))
			}
			if velocity != nil && oi != len(st.Params) {
				return fmt.Errorf("checkpoint: restored %d/%d optimiser tensors", oi, len(st.Params))
			}
			st.Velocity = velocity
			return nil
		case secParam:
			if pi >= len(st.Params) {
				return fmt.Errorf("checkpoint: extra parameter %q", name)
			}
			p := st.Params[pi]
			data, err := bytesF32(raw, name)
			if err != nil {
				return err
			}
			if name != p.Name {
				return fmt.Errorf("checkpoint: parameter %d is %q, model has %q", pi, name, p.Name)
			}
			if len(data) != p.W.Len() {
				return fmt.Errorf("checkpoint: %q has %d values, model wants %d", name, len(data), p.W.Len())
			}
			copy(p.W.Data, data)
			pi++
		case secBNStats:
			if bi >= len(st.BNs) {
				return fmt.Errorf("checkpoint: extra batch-norm section %q", name)
			}
			data, err := bytesF32(raw, name)
			if err != nil {
				return err
			}
			bn := st.BNs[bi]
			c := len(bn.RunningMean)
			if len(data) != 2*c {
				return fmt.Errorf("checkpoint: %q has %d stats, model wants %d", name, len(data), 2*c)
			}
			for i := 0; i < c; i++ {
				bn.RunningMean[i] = float64(data[i])
				bn.RunningVar[i] = float64(data[c+i])
			}
			bi++
		case secBN64:
			if bi >= len(st.BNs) {
				return fmt.Errorf("checkpoint: extra batch-norm section %q", name)
			}
			data, err := bytesF64(raw, name)
			if err != nil {
				return err
			}
			bn := st.BNs[bi]
			c := len(bn.RunningMean)
			if len(data) != 2*c {
				return fmt.Errorf("checkpoint: %q has %d stats, model wants %d", name, len(data), 2*c)
			}
			copy(bn.RunningMean, data[:c])
			copy(bn.RunningVar, data[c:])
			bi++
		case secOpt:
			if oi >= len(st.Params) {
				return fmt.Errorf("checkpoint: extra optimiser section %q", name)
			}
			p := st.Params[oi]
			data, err := bytesF32(raw, name)
			if err != nil {
				return err
			}
			if name != p.Name {
				return fmt.Errorf("checkpoint: optimiser tensor %d is %q, model has %q", oi, name, p.Name)
			}
			if len(data) != p.W.Len() {
				return fmt.Errorf("checkpoint: optimiser %q has %d values, parameter wants %d",
					name, len(data), p.W.Len())
			}
			if velocity == nil {
				velocity = make([][]float32, len(st.Params))
			}
			velocity[oi] = data
			oi++
		case secMeta:
			if len(raw) != 8 {
				return fmt.Errorf("checkpoint: meta section has %d bytes, want 8", len(raw))
			}
			st.Meta = &Meta{
				Epoch: int(binary.LittleEndian.Uint32(raw)),
				Step:  int(binary.LittleEndian.Uint32(raw[4:])),
			}
		default:
			return fmt.Errorf("checkpoint: unknown section kind %d", kind)
		}
	}
}

// ReadMeta scans a checkpoint stream for its progress record without
// needing the model: the recovery loop reads it to decide which epoch
// to resume from. Returns an error if the file carries no meta
// section (a v1 or weights-only snapshot).
func ReadMeta(r io.Reader) (Meta, error) {
	br := bufio.NewReader(r)
	ver, err := readHeader(br)
	if err != nil {
		return Meta{}, err
	}
	for {
		kind, _, raw, err := readSection(br, ver)
		if err != nil {
			return Meta{}, err
		}
		switch kind {
		case secEnd:
			return Meta{}, fmt.Errorf("checkpoint: no meta section")
		case secMeta:
			if len(raw) != 8 {
				return Meta{}, fmt.Errorf("checkpoint: meta section has %d bytes, want 8", len(raw))
			}
			return Meta{
				Epoch: int(binary.LittleEndian.Uint32(raw)),
				Step:  int(binary.LittleEndian.Uint32(raw[4:])),
			}, nil
		}
	}
}

// SaveFile writes a checkpoint atomically (temp file + rename).
func SaveFile(path string, params []*nn.Param, bns []*nn.BatchNorm2D) error {
	return SaveStateFile(path, State{Params: params, BNs: bns})
}

// LoadFile restores a checkpoint from disk.
func LoadFile(path string, params []*nn.Param, bns []*nn.BatchNorm2D) error {
	st := State{Params: params, BNs: bns}
	return LoadStateFile(path, &st)
}

// SaveStateFile writes a full snapshot atomically and durably:
//
//   - The temp file is created with os.CreateTemp in the target
//     directory (unique name per call), so two concurrent saves to the
//     same path can never clobber each other's half-written temp — a
//     fixed "path.tmp" name would let them — and the rename can never
//     cross a filesystem boundary.
//   - The file is fsynced before the rename, and the parent directory
//     after it. Rename-without-fsync is the classic crash-durability
//     bug: after a power loss the recovery path could find a
//     zero-length or torn "complete" checkpoint, the one state the
//     atomic-rename protocol exists to rule out.
//   - Every error path removes the temp file; a failed save leaves the
//     directory exactly as it found it.
func SaveStateFile(path string, st State) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := SaveState(f, st); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Windows cannot open directories for writing; the rename itself is
// the best available there, so the sync is skipped rather than failed.
func syncDir(dir string) error {
	if runtime.GOOS == "windows" {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// LoadStateFile restores a full snapshot from disk.
func LoadStateFile(path string, st *State) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadState(f, st)
}

// ReadMetaFile reads just the progress record from a checkpoint file.
func ReadMetaFile(path string) (Meta, error) {
	f, err := os.Open(path)
	if err != nil {
		return Meta{}, err
	}
	defer f.Close()
	return ReadMeta(f)
}

func writeHeader(w io.Writer) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(magic)); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, uint16(version))
}

func readHeader(r io.Reader) (int, error) {
	var m uint32
	if err := binary.Read(r, binary.LittleEndian, &m); err != nil {
		return 0, fmt.Errorf("checkpoint: reading magic: %w", err)
	}
	if m != magic {
		return 0, fmt.Errorf("checkpoint: bad magic %#x", m)
	}
	var v uint16
	if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
		return 0, err
	}
	if v != 1 && v != version {
		return 0, fmt.Errorf("checkpoint: unsupported version %d", v)
	}
	return int(v), nil
}

// writeSection writes one section: kind, name, byte length, payload.
func writeSection(w io.Writer, kind byte, name string, payload []byte) error {
	if len(name) > 255 {
		return fmt.Errorf("checkpoint: name %q too long", name)
	}
	if _, err := w.Write([]byte{kind, byte(len(name))}); err != nil {
		return err
	}
	if _, err := io.WriteString(w, name); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(payload))); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// f32Bytes encodes float32 values little-endian.
func f32Bytes(data []float32) []byte {
	buf := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	return buf
}

// f64Bytes encodes float64 values little-endian.
func f64Bytes(data []float64) []byte {
	buf := make([]byte, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}

// bytesF32 decodes a section payload as float32s.
func bytesF32(raw []byte, name string) ([]float32, error) {
	if len(raw)%4 != 0 {
		return nil, fmt.Errorf("checkpoint: section %q has %d bytes, not a float32 multiple", name, len(raw))
	}
	data := make([]float32, len(raw)/4)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return data, nil
}

// bytesF64 decodes a section payload as float64s.
func bytesF64(raw []byte, name string) ([]float64, error) {
	if len(raw)%8 != 0 {
		return nil, fmt.Errorf("checkpoint: section %q has %d bytes, not a float64 multiple", name, len(raw))
	}
	data := make([]float64, len(raw)/8)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return data, nil
}

// readSection reads one section header and its raw payload. The
// length field counts bytes in v2 files and float32 values in v1
// files; either way it is bounded before allocation so a malformed
// file cannot drive an over-allocation.
func readSection(r *bufio.Reader, ver int) (kind byte, name string, raw []byte, err error) {
	kind, err = r.ReadByte()
	if err != nil {
		return 0, "", nil, fmt.Errorf("checkpoint: reading section kind: %w", err)
	}
	if kind == secEnd {
		return kind, "", nil, nil
	}
	nameLen, err := r.ReadByte()
	if err != nil {
		return 0, "", nil, err
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(r, nameBuf); err != nil {
		return 0, "", nil, err
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return 0, "", nil, err
	}
	size := uint64(n)
	if ver == 1 {
		size *= 4 // v1 counted float32 values, not bytes
	}
	const maxSection = 1 << 30 // 1 GiB — far above any model here
	if size > maxSection {
		return 0, "", nil, fmt.Errorf("checkpoint: section %q implausibly large (%d bytes)", nameBuf, size)
	}
	raw = make([]byte, size)
	if _, err := io.ReadFull(r, raw); err != nil {
		return 0, "", nil, err
	}
	return kind, string(nameBuf), raw, nil
}
