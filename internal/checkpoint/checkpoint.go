// Package checkpoint serialises and restores training state: model
// parameters, batch-norm running statistics, and optimiser velocity —
// what long-running distributed jobs on Summit write between job
// allocations. The format is a small self-describing binary container
// (magic, version, named float32/float64 sections with lengths),
// written with encoding/binary; no reflection, no external deps.
package checkpoint

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"segscale/internal/nn"
)

const (
	magic   = 0x5345_4743 // "SEGC"
	version = 1

	secParam   = 1
	secBNStats = 2
	secEnd     = 0xFF
)

// Save writes parameters (weights) and batch-norm running statistics
// to w. Gradients and optimiser state are not included — Horovod jobs
// conventionally restart momentum cold, as we do.
func Save(w io.Writer, params []*nn.Param, bns []*nn.BatchNorm2D) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeSection(bw, secParam, p.Name, p.W.Data); err != nil {
			return err
		}
	}
	for i, bn := range bns {
		stats := make([]float32, 0, 2*len(bn.RunningMean))
		for _, v := range bn.RunningMean {
			stats = append(stats, float32(v))
		}
		for _, v := range bn.RunningVar {
			stats = append(stats, float32(v))
		}
		if err := writeSection(bw, secBNStats, fmt.Sprintf("bn%d", i), stats); err != nil {
			return err
		}
	}
	if err := bw.WriteByte(secEnd); err != nil {
		return err
	}
	return bw.Flush()
}

// Load restores parameters and batch-norm statistics written by Save.
// The parameter list and BN list must structurally match (same names,
// same order, same lengths) — the usual same-model-code contract.
func Load(r io.Reader, params []*nn.Param, bns []*nn.BatchNorm2D) error {
	br := bufio.NewReader(r)
	if err := readHeader(br); err != nil {
		return err
	}
	pi, bi := 0, 0
	for {
		kind, name, data, err := readSection(br)
		if err != nil {
			return err
		}
		switch kind {
		case secEnd:
			if pi != len(params) || bi != len(bns) {
				return fmt.Errorf("checkpoint: restored %d/%d params, %d/%d batch norms",
					pi, len(params), bi, len(bns))
			}
			return nil
		case secParam:
			if pi >= len(params) {
				return fmt.Errorf("checkpoint: extra parameter %q", name)
			}
			p := params[pi]
			if name != p.Name {
				return fmt.Errorf("checkpoint: parameter %d is %q, model has %q", pi, name, p.Name)
			}
			if len(data) != p.W.Len() {
				return fmt.Errorf("checkpoint: %q has %d values, model wants %d", name, len(data), p.W.Len())
			}
			copy(p.W.Data, data)
			pi++
		case secBNStats:
			if bi >= len(bns) {
				return fmt.Errorf("checkpoint: extra batch-norm section %q", name)
			}
			bn := bns[bi]
			c := len(bn.RunningMean)
			if len(data) != 2*c {
				return fmt.Errorf("checkpoint: %q has %d stats, model wants %d", name, len(data), 2*c)
			}
			for i := 0; i < c; i++ {
				bn.RunningMean[i] = float64(data[i])
				bn.RunningVar[i] = float64(data[c+i])
			}
			bi++
		default:
			return fmt.Errorf("checkpoint: unknown section kind %d", kind)
		}
	}
}

// SaveFile writes a checkpoint atomically (temp file + rename).
func SaveFile(path string, params []*nn.Param, bns []*nn.BatchNorm2D) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Save(f, params, bns); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile restores a checkpoint from disk.
func LoadFile(path string, params []*nn.Param, bns []*nn.BatchNorm2D) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Load(f, params, bns)
}

func writeHeader(w io.Writer) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(magic)); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, uint16(version))
}

func readHeader(r io.Reader) error {
	var m uint32
	if err := binary.Read(r, binary.LittleEndian, &m); err != nil {
		return fmt.Errorf("checkpoint: reading magic: %w", err)
	}
	if m != magic {
		return fmt.Errorf("checkpoint: bad magic %#x", m)
	}
	var v uint16
	if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
		return err
	}
	if v != version {
		return fmt.Errorf("checkpoint: unsupported version %d", v)
	}
	return nil
}

func writeSection(w io.Writer, kind byte, name string, data []float32) error {
	if len(name) > 255 {
		return fmt.Errorf("checkpoint: name %q too long", name)
	}
	if _, err := w.Write([]byte{kind, byte(len(name))}); err != nil {
		return err
	}
	if _, err := io.WriteString(w, name); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(data))); err != nil {
		return err
	}
	buf := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func readSection(r *bufio.Reader) (kind byte, name string, data []float32, err error) {
	kind, err = r.ReadByte()
	if err != nil {
		return 0, "", nil, fmt.Errorf("checkpoint: reading section kind: %w", err)
	}
	if kind == secEnd {
		return kind, "", nil, nil
	}
	nameLen, err := r.ReadByte()
	if err != nil {
		return 0, "", nil, err
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(r, nameBuf); err != nil {
		return 0, "", nil, err
	}
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return 0, "", nil, err
	}
	const maxSection = 1 << 28 // 256 MiB of floats — far above any model here
	if n > maxSection {
		return 0, "", nil, fmt.Errorf("checkpoint: section %q implausibly large (%d)", nameBuf, n)
	}
	raw := make([]byte, 4*int(n))
	if _, err := io.ReadFull(r, raw); err != nil {
		return 0, "", nil, err
	}
	data = make([]float32, n)
	for i := range data {
		data[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return kind, string(nameBuf), data, nil
}
