package checkpoint

import (
	"bytes"
	"testing"

	"segscale/internal/deeplab"
)

// FuzzLoad hardens the checkpoint reader against corrupt or
// adversarial inputs: any byte stream must produce an error or a
// clean load, never a panic or runaway allocation.
func FuzzLoad(f *testing.F) {
	cfg := deeplab.DefaultConfig()
	cfg.InputSize = 16
	cfg.Width = 6
	cfg.DeepBlocks = 1
	cfg.AtrousRates = [3]int{1, 2, 3}

	// Seed with a valid checkpoint and mutations of it.
	m := deeplab.New(cfg)
	var valid bytes.Buffer
	if err := Save(&valid, m.Params(), m.BatchNorms()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	truncated := valid.Bytes()[:valid.Len()/2]
	f.Add(truncated)
	f.Add([]byte{})
	f.Add([]byte{0x43, 0x47, 0x45, 0x53, 1, 0}) // magic, v1, nothing else
	bigSection := append(append([]byte{}, valid.Bytes()[:6]...),
		1, 1, 'x', 0xFF, 0xFF, 0xFF, 0x7F) // section claiming 2³¹ floats
	f.Add(bigSection)

	f.Fuzz(func(t *testing.T, data []byte) {
		model := deeplab.New(cfg)
		// Must not panic; error or success are both fine.
		_ = Load(bytes.NewReader(data), model.Params(), model.BatchNorms())
	})
}

// FuzzLoadState hardens the full-state (v2) reader: optimiser, meta,
// and float64 batch-norm sections must survive arbitrary corruption
// with an error, never a panic or runaway allocation. ReadMeta shares
// the section walker, so it is fuzzed on the same inputs.
func FuzzLoadState(f *testing.F) {
	cfg := deeplab.DefaultConfig()
	cfg.InputSize = 16
	cfg.Width = 6
	cfg.DeepBlocks = 1
	cfg.AtrousRates = [3]int{1, 2, 3}

	m := deeplab.New(cfg)
	velocity := make([][]float32, len(m.Params()))
	for i, p := range m.Params() {
		velocity[i] = make([]float32, p.W.Len())
	}
	var valid bytes.Buffer
	err := SaveState(&valid, State{
		Params:   m.Params(),
		BNs:      m.BatchNorms(),
		Velocity: velocity,
		Meta:     &Meta{Epoch: 2, Step: 9},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()/2])
	f.Add([]byte{})
	f.Add([]byte{0x43, 0x47, 0x45, 0x53, 2, 0}) // magic, v2, nothing else
	// Meta section with a wrong payload size.
	f.Add(append(append([]byte{}, valid.Bytes()[:6]...), secMeta, 1, 'm', 3, 0, 0, 0, 1, 2, 3))
	// Section claiming ~4 GiB of payload.
	f.Add(append(append([]byte{}, valid.Bytes()[:6]...), secOpt, 1, 'x', 0xFF, 0xFF, 0xFF, 0xFF))

	f.Fuzz(func(t *testing.T, data []byte) {
		model := deeplab.New(cfg)
		st := State{Params: model.Params(), BNs: model.BatchNorms()}
		_ = LoadState(bytes.NewReader(data), &st)
		_, _ = ReadMeta(bytes.NewReader(data))
	})
}
