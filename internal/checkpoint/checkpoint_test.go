package checkpoint

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"segscale/internal/deeplab"
	"segscale/internal/nn"
	"segscale/internal/segdata"
)

func smallModel(seed int64) *deeplab.Model {
	cfg := deeplab.DefaultConfig()
	cfg.InputSize = 16
	cfg.Width = 6
	cfg.DeepBlocks = 1
	cfg.AtrousRates = [3]int{1, 2, 3}
	cfg.Seed = seed
	return deeplab.New(cfg)
}

func TestRoundTripRestoresWeightsAndStats(t *testing.T) {
	src := smallModel(1)
	// Train a step so weights and running stats move off init.
	ds := segdata.New(4, 16, 16, 3)
	x, labels := ds.Batch([]int{0, 1})
	opt := nn.NewSGD(0.05)
	src.Loss(x, labels, segdata.IgnoreLabel, true)
	opt.Step(src.Params())

	var buf bytes.Buffer
	if err := Save(&buf, src.Params(), src.BatchNorms()); err != nil {
		t.Fatal(err)
	}

	dst := smallModel(99) // different init
	if err := Load(&buf, dst.Params(), dst.BatchNorms()); err != nil {
		t.Fatal(err)
	}
	sp, dp := src.Params(), dst.Params()
	for i := range sp {
		for j := range sp[i].W.Data {
			if sp[i].W.Data[j] != dp[i].W.Data[j] {
				t.Fatalf("param %s[%d] differs after restore", sp[i].Name, j)
			}
		}
	}
	sb, db := src.BatchNorms(), dst.BatchNorms()
	for i := range sb {
		for j := range sb[i].RunningMean {
			// Stats round-trip through float32.
			if f32(sb[i].RunningMean[j]) != f32(db[i].RunningMean[j]) ||
				f32(sb[i].RunningVar[j]) != f32(db[i].RunningVar[j]) {
				t.Fatalf("bn %d stats differ after restore", i)
			}
		}
	}
	// Restored model predicts identically.
	ps, pd := src.Predict(x), dst.Predict(x)
	for i := range ps {
		if ps[i] != pd[i] {
			t.Fatal("restored model predicts differently")
		}
	}
}

func f32(v float64) float32 { return float32(v) }

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.segc")
	src := smallModel(2)
	if err := SaveFile(path, src.Params(), src.BatchNorms()); err != nil {
		t.Fatal(err)
	}
	dst := smallModel(3)
	if err := LoadFile(path, dst.Params(), dst.BatchNorms()); err != nil {
		t.Fatal(err)
	}
	if src.Params()[0].W.Data[0] != dst.Params()[0].W.Data[0] {
		t.Fatal("file round trip failed")
	}
	// Atomic write: no .tmp file left behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
}

func TestLoadRejectsCorruptHeader(t *testing.T) {
	m := smallModel(4)
	if err := Load(bytes.NewReader([]byte{1, 2, 3}), m.Params(), m.BatchNorms()); err == nil {
		t.Fatal("short/corrupt stream accepted")
	}
	if err := Load(bytes.NewReader([]byte{0, 0, 0, 0, 1, 0}), m.Params(), m.BatchNorms()); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestLoadRejectsStructureMismatch(t *testing.T) {
	small := smallModel(5)
	var buf bytes.Buffer
	if err := Save(&buf, small.Params(), small.BatchNorms()); err != nil {
		t.Fatal(err)
	}
	// A wider model has different tensor sizes under the same names.
	cfg := deeplab.DefaultConfig()
	cfg.InputSize = 16
	cfg.Width = 8
	cfg.DeepBlocks = 1
	cfg.AtrousRates = [3]int{1, 2, 3}
	big := deeplab.New(cfg)
	if err := Load(bytes.NewReader(buf.Bytes()), big.Params(), big.BatchNorms()); err == nil {
		t.Fatal("mismatched model accepted")
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	m := smallModel(6)
	var buf bytes.Buffer
	if err := Save(&buf, m.Params(), m.BatchNorms()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{len(data) / 3, len(data) - 1} {
		dst := smallModel(7)
		if err := Load(bytes.NewReader(data[:cut]), dst.Params(), dst.BatchNorms()); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestLoadRejectsMissingSections(t *testing.T) {
	m := smallModel(8)
	var buf bytes.Buffer
	// Save only the parameters (no BN sections), then end marker.
	if err := Save(&buf, m.Params(), nil); err != nil {
		t.Fatal(err)
	}
	dst := smallModel(9)
	if err := Load(bytes.NewReader(buf.Bytes()), dst.Params(), dst.BatchNorms()); err == nil {
		t.Fatal("checkpoint with missing BN stats accepted")
	}
}
