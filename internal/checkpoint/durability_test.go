package checkpoint

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// dirEntries lists the names currently in dir.
func dirEntries(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

// TestSaveStateFileErrorLeavesNoTemp locks in the failed-save
// contract: when SaveState rejects the snapshot, the target directory
// is left exactly as it was found — no temp file, no target file.
func TestSaveStateFileErrorLeavesNoTemp(t *testing.T) {
	m := smallModel(11)
	dir := t.TempDir()
	path := filepath.Join(dir, "state.segc")

	bad := State{Params: m.Params(), BNs: m.BatchNorms(), Meta: &Meta{Epoch: -1}}
	if err := SaveStateFile(path, bad); err == nil {
		t.Fatal("negative meta accepted")
	}
	if got := dirEntries(t, dir); len(got) != 0 {
		t.Fatalf("failed save left residue: %v", got)
	}

	// Same contract with a structurally bad snapshot.
	bad = State{Params: m.Params(), BNs: m.BatchNorms(),
		Velocity: make([][]float32, 1)}
	if err := SaveStateFile(path, bad); err == nil {
		t.Fatal("velocity count mismatch accepted")
	}
	if got := dirEntries(t, dir); len(got) != 0 {
		t.Fatalf("failed save left residue: %v", got)
	}
}

// TestSaveStateFileErrorPreservesExisting: a failed save must not
// disturb a previously committed checkpoint at the same path.
func TestSaveStateFileErrorPreservesExisting(t *testing.T) {
	src, _ := trainedState(t, 12)
	dir := t.TempDir()
	path := filepath.Join(dir, "state.segc")
	if err := SaveStateFile(path, src); err != nil {
		t.Fatal(err)
	}

	m := smallModel(13)
	bad := State{Params: m.Params(), BNs: m.BatchNorms(), Meta: &Meta{Epoch: -1}}
	if err := SaveStateFile(path, bad); err == nil {
		t.Fatal("negative meta accepted")
	}
	if got := dirEntries(t, dir); len(got) != 1 || got[0] != "state.segc" {
		t.Fatalf("directory after failed overwrite: %v", got)
	}
	meta, err := ReadMetaFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta != (Meta{Epoch: 3, Step: 17}) {
		t.Fatalf("existing checkpoint damaged by failed save: %+v", meta)
	}
}

// TestSaveStateFileConcurrentSaves hammers one path from many
// goroutines. With the old fixed "path.tmp" temp name, writers clobber
// each other's half-written temp and the final rename can commit a
// torn file; unique per-call temps make every rename atomic, so the
// survivor must always be one complete checkpoint.
func TestSaveStateFileConcurrentSaves(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.segc")

	const writers = 8
	states := make([]State, writers)
	for i := range states {
		st, _ := trainedState(t, int64(20+i))
		st.Meta = &Meta{Epoch: i, Step: 100 + i}
		states[i] = st
	}

	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(st State) {
			defer wg.Done()
			if err := SaveStateFile(path, st); err != nil {
				t.Errorf("concurrent save: %v", err)
			}
		}(states[i])
	}
	wg.Wait()

	// Exactly the target file survives — every temp was renamed away.
	if got := dirEntries(t, dir); len(got) != 1 || got[0] != "state.segc" {
		t.Fatalf("directory after concurrent saves: %v", got)
	}

	// The survivor is one writer's complete snapshot, not an interleaving.
	meta, err := ReadMetaFile(path)
	if err != nil {
		t.Fatalf("survivor unreadable: %v", err)
	}
	winner := meta.Step - 100
	if winner < 0 || winner >= writers || meta.Epoch != winner {
		t.Fatalf("survivor meta %+v matches no writer", meta)
	}
	m := smallModel(99)
	dst := State{Params: m.Params(), BNs: m.BatchNorms()}
	if err := LoadStateFile(path, &dst); err != nil {
		t.Fatalf("survivor fails full load: %v", err)
	}
	want := states[winner]
	for i := range want.Params {
		for j, v := range want.Params[i].W.Data {
			if dst.Params[i].W.Data[j] != v {
				t.Fatalf("survivor param %s[%d] is not writer %d's value",
					want.Params[i].Name, j, winner)
			}
		}
	}
}

// TestSaveStateFileMissingDir: saving into a directory that does not
// exist fails cleanly instead of silently writing elsewhere.
func TestSaveStateFileMissingDir(t *testing.T) {
	src, _ := trainedState(t, 14)
	path := filepath.Join(t.TempDir(), "no-such-dir", "state.segc")
	if err := SaveStateFile(path, src); err == nil {
		t.Fatal("save into missing directory succeeded")
	}
}
