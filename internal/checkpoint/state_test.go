package checkpoint

import (
	"bytes"
	"encoding/binary"
	"math"
	"path/filepath"
	"testing"

	"segscale/internal/nn"
	"segscale/internal/segdata"
)

// trainedState trains a small model one step and snapshots everything
// — weights and stats off init, real optimiser velocity.
func trainedState(t *testing.T, seed int64) (State, *nn.SGD) {
	t.Helper()
	m := smallModel(seed)
	ds := segdata.New(4, 16, 16, 3)
	x, labels := ds.Batch([]int{0, 1})
	opt := nn.NewSGD(0.05)
	m.Loss(x, labels, segdata.IgnoreLabel, true)
	opt.Step(m.Params())
	return State{
		Params:   m.Params(),
		BNs:      m.BatchNorms(),
		Velocity: opt.ExportState(m.Params()),
		Meta:     &Meta{Epoch: 3, Step: 17},
	}, opt
}

func TestStateRoundTrip(t *testing.T) {
	src, _ := trainedState(t, 1)
	var buf bytes.Buffer
	if err := SaveState(&buf, src); err != nil {
		t.Fatal(err)
	}

	m2 := smallModel(42)
	dst := State{Params: m2.Params(), BNs: m2.BatchNorms()}
	if err := LoadState(bytes.NewReader(buf.Bytes()), &dst); err != nil {
		t.Fatal(err)
	}
	if dst.Meta == nil || *dst.Meta != (Meta{Epoch: 3, Step: 17}) {
		t.Fatalf("meta = %+v", dst.Meta)
	}
	for i := range src.Params {
		for j, v := range src.Params[i].W.Data {
			if dst.Params[i].W.Data[j] != v {
				t.Fatalf("param %s[%d] differs", src.Params[i].Name, j)
			}
		}
	}
	// BN stats must round-trip losslessly (float64 sections) — the
	// bit-identical restart invariant depends on it.
	for i := range src.BNs {
		for j := range src.BNs[i].RunningMean {
			if src.BNs[i].RunningMean[j] != dst.BNs[i].RunningMean[j] ||
				src.BNs[i].RunningVar[j] != dst.BNs[i].RunningVar[j] {
				t.Fatalf("bn %d stats lost precision", i)
			}
		}
	}
	if len(dst.Velocity) != len(src.Velocity) {
		t.Fatalf("velocity tensors %d vs %d", len(dst.Velocity), len(src.Velocity))
	}
	for i := range src.Velocity {
		for j, v := range src.Velocity[i] {
			if dst.Velocity[i][j] != v {
				t.Fatalf("velocity %d[%d] differs", i, j)
			}
		}
	}
	// The restored velocity feeds back into an optimiser.
	opt2 := nn.NewSGD(0.05)
	if err := opt2.ImportState(dst.Params, dst.Velocity); err != nil {
		t.Fatal(err)
	}
}

func TestStateFileRoundTripAndReadMeta(t *testing.T) {
	src, _ := trainedState(t, 2)
	path := filepath.Join(t.TempDir(), "state.segc")
	if err := SaveStateFile(path, src); err != nil {
		t.Fatal(err)
	}
	meta, err := ReadMetaFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if meta != (Meta{Epoch: 3, Step: 17}) {
		t.Fatalf("ReadMetaFile = %+v", meta)
	}
	m2 := smallModel(3)
	dst := State{Params: m2.Params(), BNs: m2.BatchNorms()}
	if err := LoadStateFile(path, &dst); err != nil {
		t.Fatal(err)
	}
	if dst.Params[0].W.Data[0] != src.Params[0].W.Data[0] {
		t.Fatal("state file round trip failed")
	}
}

func TestWeightsOnlySnapshotHasNoMeta(t *testing.T) {
	m := smallModel(4)
	var buf bytes.Buffer
	if err := Save(&buf, m.Params(), m.BatchNorms()); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMeta(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("weights-only snapshot yielded a meta record")
	}
	m2 := smallModel(5)
	dst := State{Params: m2.Params(), BNs: m2.BatchNorms()}
	if err := LoadState(bytes.NewReader(buf.Bytes()), &dst); err != nil {
		t.Fatal(err)
	}
	if dst.Meta != nil || dst.Velocity != nil {
		t.Fatalf("weights-only load produced meta %+v velocity %d", dst.Meta, len(dst.Velocity))
	}
}

// writeV1 reproduces the version-1 container byte-for-byte: float32
// sections whose length field counts values, not bytes.
func writeV1(t *testing.T, st State) []byte {
	t.Helper()
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, uint32(magic))
	binary.Write(&buf, binary.LittleEndian, uint16(1))
	sec := func(kind byte, name string, data []float32) {
		buf.WriteByte(kind)
		buf.WriteByte(byte(len(name)))
		buf.WriteString(name)
		binary.Write(&buf, binary.LittleEndian, uint32(len(data)))
		for _, v := range data {
			binary.Write(&buf, binary.LittleEndian, math.Float32bits(v))
		}
	}
	for _, p := range st.Params {
		sec(secParam, p.Name, p.W.Data)
	}
	for i, bn := range st.BNs {
		stats := make([]float32, 0, 2*len(bn.RunningMean))
		for _, v := range bn.RunningMean {
			stats = append(stats, float32(v))
		}
		for _, v := range bn.RunningVar {
			stats = append(stats, float32(v))
		}
		sec(secBNStats, "bn"+string(rune('0'+i%10)), stats)
	}
	buf.WriteByte(secEnd)
	return buf.Bytes()
}

func TestLoadAcceptsVersion1(t *testing.T) {
	src, _ := trainedState(t, 6)
	data := writeV1(t, src)
	m2 := smallModel(7)
	dst := State{Params: m2.Params(), BNs: m2.BatchNorms()}
	if err := LoadState(bytes.NewReader(data), &dst); err != nil {
		t.Fatal(err)
	}
	for i := range src.Params {
		for j, v := range src.Params[i].W.Data {
			if dst.Params[i].W.Data[j] != v {
				t.Fatalf("param %s[%d] differs via v1", src.Params[i].Name, j)
			}
		}
	}
	// v1 BN stats round-trip through float32 — equal after truncation.
	for i := range src.BNs {
		for j := range src.BNs[i].RunningMean {
			if float32(src.BNs[i].RunningMean[j]) != float32(dst.BNs[i].RunningMean[j]) {
				t.Fatalf("bn %d stats differ via v1", i)
			}
		}
	}
}

func TestSaveStateRejectsBadShapes(t *testing.T) {
	m := smallModel(8)
	var buf bytes.Buffer
	bad := State{Params: m.Params(), BNs: m.BatchNorms(),
		Velocity: make([][]float32, 1)} // wrong tensor count
	if err := SaveState(&buf, bad); err == nil {
		t.Fatal("velocity count mismatch accepted")
	}
	neg := State{Params: m.Params(), BNs: m.BatchNorms(), Meta: &Meta{Epoch: -1}}
	if err := SaveState(&buf, neg); err == nil {
		t.Fatal("negative meta accepted")
	}
}

func TestLoadStateRejectsTruncatedOptimiser(t *testing.T) {
	src, _ := trainedState(t, 9)
	var buf bytes.Buffer
	// Drop the last velocity tensor: structural mismatch must error.
	short := src
	short.Velocity = src.Velocity[:len(src.Velocity)-1]
	if err := SaveState(&buf, short); err == nil {
		t.Fatal("short velocity accepted at save")
	}
}
