package netmodel

import "fmt"

// Algorithm names an allreduce implementation strategy.
type Algorithm int

const (
	// AlgAuto lets the model pick by message size and group span, the
	// way MPI libraries select internally.
	AlgAuto Algorithm = iota
	// AlgRing is the bandwidth-optimal ring.
	AlgRing
	// AlgRecursiveDoubling is the latency-optimal log-step exchange.
	AlgRecursiveDoubling
	// AlgRabenseifner is reduce-scatter + allgather with log latency.
	AlgRabenseifner
	// AlgHierLeader is Horovod's hierarchical allreduce (node leaders).
	AlgHierLeader
	// AlgHierTorus is the two-level reduce-scatter/ring/allgather.
	AlgHierTorus
	// AlgHierTwoLevel is the topology-aware two-level allreduce: each
	// level's algorithm is picked from the machine's link parameters.
	AlgHierTwoLevel
)

var algNames = map[Algorithm]string{
	AlgAuto:              "auto",
	AlgRing:              "ring",
	AlgRecursiveDoubling: "recursive-doubling",
	AlgRabenseifner:      "rabenseifner",
	AlgHierLeader:        "hier-leader",
	AlgHierTorus:         "hier-torus",
	AlgHierTwoLevel:      "hier-2level",
}

func (a Algorithm) String() string {
	if s, ok := algNames[a]; ok {
		return s
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// AlgorithmByName parses an algorithm name.
func AlgorithmByName(s string) (Algorithm, error) {
	for a, name := range algNames {
		if name == s {
			return a, nil
		}
	}
	return AlgAuto, fmt.Errorf("netmodel: unknown allreduce algorithm %q", s)
}

// Algorithms lists the concrete (non-auto) algorithms.
func Algorithms() []Algorithm {
	return []Algorithm{AlgRing, AlgRecursiveDoubling, AlgRabenseifner, AlgHierLeader, AlgHierTorus, AlgHierTwoLevel}
}

// smallMessageLimit is the size below which latency-optimal
// algorithms win and libraries switch to recursive doubling.
const smallMessageLimit = 64 << 10

// Pick resolves AlgAuto for a given group and message size.
func (m *Model) Pick(alg Algorithm, ranks []int, n int) Algorithm {
	if alg != AlgAuto {
		return alg
	}
	if n <= smallMessageLimit {
		return AlgRecursiveDoubling
	}
	if m.spansNodes(ranks) && m.Mach.GPUsPer > 1 {
		return AlgHierTorus
	}
	return AlgRing
}

// Allreduce returns the modelled time for an allreduce of n bytes over
// the group using the given algorithm (resolving AlgAuto).
func (m *Model) Allreduce(alg Algorithm, ranks []int, n int) float64 {
	switch m.Pick(alg, ranks, n) {
	case AlgRing:
		return m.AllreduceRing(ranks, n)
	case AlgRecursiveDoubling:
		return m.AllreduceRecursiveDoubling(ranks, n)
	case AlgRabenseifner:
		return m.AllreduceRabenseifner(ranks, n)
	case AlgHierLeader:
		return m.AllreduceHierLeader(ranks, n)
	case AlgHierTorus:
		return m.AllreduceHierTorus(ranks, n)
	case AlgHierTwoLevel:
		return m.AllreduceHierTwoLevel(ranks, n)
	default:
		panic("netmodel: unresolved algorithm")
	}
}

// WorldRanks returns 0..Ranks-1 for the model's machine.
func (m *Model) WorldRanks() []int {
	out := make([]int, m.Mach.Ranks())
	for i := range out {
		out[i] = i
	}
	return out
}
