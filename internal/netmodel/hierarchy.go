package netmodel

import "segscale/internal/topology"

// Hierarchical allreduce variants. Horovod (0.16–0.19, the paper's
// era) exposes HOROVOD_HIERARCHICAL_ALLREDUCE, which composes an
// intra-node phase on the fast NVLink fabric with an inter-node phase
// on InfiniBand. We model the two shapes found in practice.

// AllreduceHierLeader is Horovod's classic hierarchical allreduce:
//
//  1. intra-node reduce of the full buffer to the node leader,
//  2. allreduce of the full buffer among the node leaders over IB,
//  3. intra-node broadcast of the result.
//
// Only one flow per NIC, but the inter-node phase carries the whole
// buffer.
func (m *Model) AllreduceHierLeader(ranks []int, n int) float64 {
	groups, leaders := m.splitByNode(ranks)
	if len(groups) <= 1 {
		// Single node: plain intra-node ring.
		return m.AllreduceRing(ranks, n)
	}
	var intraReduce, intraBcast float64
	for _, g := range groups {
		if t := m.ReduceScatterRing(g, n) + m.AllgatherRing(g, n); t > intraReduce {
			// Reduce-to-leader costs about a reduce-scatter plus a
			// gather of segments to the root; ring RS+AG is the
			// standard NCCL-style estimate.
			intraReduce = t
		}
		if t := m.Bcast(g, n); t > intraBcast {
			intraBcast = t
		}
	}
	inter := m.AllreduceRing(leaders, n)
	return intraReduce + inter + intraBcast
}

// AllreduceHierTorus is the bandwidth-optimal two-level variant:
//
//  1. intra-node reduce-scatter (each local rank owns n/g),
//  2. g concurrent inter-node ring allreduces, one per local rank,
//     each over its shard — all g flows share the NIC,
//  3. intra-node allgather.
//
// Inter-node volume per NIC drops to 2(nodes−1)/nodes · n instead of
// the leader variant's same volume at 1/g of the latency exposure —
// but the per-flow bandwidth is also 1/g, so the bandwidth terms
// match and the win is in latency and overlap granularity.
func (m *Model) AllreduceHierTorus(ranks []int, n int) float64 {
	groups, _ := m.splitByNode(ranks)
	if len(groups) <= 1 {
		return m.AllreduceRing(ranks, n)
	}
	g := len(groups[0])
	shard := (n + g - 1) / g
	var intraRS, intraAG float64
	for _, grp := range groups {
		if t := m.ReduceScatterRing(grp, n); t > intraRS {
			intraRS = t
		}
		if t := m.AllgatherRing(grp, n); t > intraAG {
			intraAG = t
		}
	}
	// One inter-node ring per local-rank index, concurrent, sharing
	// the NIC g ways.
	nodes := len(groups)
	seg := (shard + nodes - 1) / nodes
	step := m.xferShared(topology.LinkIB, seg, g)
	inter := float64(nodes-1)*(step+m.reduceTime(seg)) + float64(nodes-1)*step
	return intraRS + inter + intraAG
}

// splitByNode partitions the group into per-node sub-groups and
// returns the node-leader ranks (lowest rank per node). The result
// for the most recent rank group is memoized (callers treat it as
// read-only): pricing one fused buffer used to rebuild this partition
// from a map, and at 132 GPUs that map dominated the simulator's
// allocation profile.
func (m *Model) splitByNode(ranks []int) (groups [][]int, leaders []int) {
	if c := &m.split; len(c.ranks) == len(ranks) && len(ranks) > 0 {
		same := true
		for i, r := range ranks {
			if c.ranks[i] != r {
				same = false
				break
			}
		}
		if same {
			return c.groups, c.leaders
		}
	}
	byNode := map[int][]int{} //seglint:ignore hotalloc partition miss: recomputed only when the rank group changes, then memoized
	var order []int
	for _, r := range ranks {
		n := m.Mach.Node(r)
		if _, ok := byNode[n]; !ok {
			order = append(order, n) //seglint:ignore hotalloc partition miss path, memoized
		}
		byNode[n] = append(byNode[n], r) //seglint:ignore hotalloc partition miss path, memoized
	}
	for _, n := range order {
		g := byNode[n]
		groups = append(groups, g)      //seglint:ignore hotalloc partition miss path, memoized
		leaders = append(leaders, g[0]) //seglint:ignore hotalloc partition miss path, memoized
	}
	m.split.ranks = append(m.split.ranks[:0], ranks...) //seglint:ignore hotalloc memo key copy on partition miss; capacity is retained
	m.split.groups = groups
	m.split.leaders = leaders
	return groups, leaders
}
