package netmodel

import "segscale/internal/topology"

// Hierarchical allreduce variants. Horovod (0.16–0.19, the paper's
// era) exposes HOROVOD_HIERARCHICAL_ALLREDUCE, which composes an
// intra-node phase on the fast NVLink fabric with an inter-node phase
// on InfiniBand. We model the two shapes found in practice.

// AllreduceHierLeader is Horovod's classic hierarchical allreduce:
//
//  1. intra-node reduce of the full buffer to the node leader,
//  2. allreduce of the full buffer among the node leaders over IB,
//  3. intra-node broadcast of the result.
//
// Only one flow per NIC, but the inter-node phase carries the whole
// buffer.
func (m *Model) AllreduceHierLeader(ranks []int, n int) float64 {
	groups, leaders := m.splitByNode(ranks)
	if len(groups) <= 1 {
		// Single node: plain intra-node ring.
		return m.AllreduceRing(ranks, n)
	}
	var intraReduce, intraBcast float64
	for _, g := range groups {
		if t := m.ReduceScatterRing(g, n) + m.AllgatherRing(g, n); t > intraReduce {
			// Reduce-to-leader costs about a reduce-scatter plus a
			// gather of segments to the root; ring RS+AG is the
			// standard NCCL-style estimate.
			intraReduce = t
		}
		if t := m.Bcast(g, n); t > intraBcast {
			intraBcast = t
		}
	}
	inter := m.AllreduceRing(leaders, n)
	return intraReduce + inter + intraBcast
}

// AllreduceHierTorus is the bandwidth-optimal two-level variant:
//
//  1. intra-node reduce-scatter (each local rank owns n/g),
//  2. g concurrent inter-node ring allreduces, one per local rank,
//     each over its shard — all g flows share the NIC,
//  3. intra-node allgather.
//
// Inter-node volume per NIC drops to 2(nodes−1)/nodes · n instead of
// the leader variant's same volume at 1/g of the latency exposure —
// but the per-flow bandwidth is also 1/g, so the bandwidth terms
// match and the win is in latency and overlap granularity.
func (m *Model) AllreduceHierTorus(ranks []int, n int) float64 {
	groups, _ := m.splitByNode(ranks)
	if len(groups) <= 1 {
		return m.AllreduceRing(ranks, n)
	}
	g := len(groups[0])
	shard := (n + g - 1) / g
	var intraRS, intraAG float64
	for _, grp := range groups {
		if t := m.ReduceScatterRing(grp, n); t > intraRS {
			intraRS = t
		}
		if t := m.AllgatherRing(grp, n); t > intraAG {
			intraAG = t
		}
	}
	// One inter-node ring per local-rank index, concurrent, sharing
	// the NIC g ways.
	nodes := len(groups)
	seg := (shard + nodes - 1) / nodes
	step := m.xferShared(topology.LinkIB, seg, g)
	inter := float64(nodes-1)*(step+m.reduceTime(seg)) + float64(nodes-1)*step
	return intraRS + inter + intraAG
}

// LevelSpecs derives the α–β link specs of the two hierarchy levels
// from the MPI profile, for the per-level algorithm choice. The intra
// spec uses the worst intra-node hop (X-Bus once a node group spans
// both triads, NVLink otherwise); the inter spec is the GPU-direct IB
// path.
func (m *Model) LevelSpecs() (intra, inter topology.LinkSpec) {
	ik := topology.LinkNVLink
	if m.Mach.GPUsPer > topology.GPUsPerTriad {
		ik = topology.LinkXBus
	}
	a, bw := m.LinkParams(ik)
	intra = topology.LinkSpec{AlphaSec: a, BWBytesPerSec: bw}
	a, bw = m.LinkParams(topology.LinkIB)
	inter = topology.LinkSpec{AlphaSec: a, BWBytesPerSec: bw}
	return intra, inter
}

// AllreduceHierTwoLevel prices the topology-aware two-level allreduce
// implemented by collective.AllreduceHierTwoLevel: the per-level
// algorithm is picked from the machine's link parameters (the same
// PickLevelAlg decision the data-carrying code makes), then the levels
// compose either as the torus (even groups, ring intra pick) or as the
// leader hierarchy. The pick depends on the buffer size, so a fusion
// sweep moves through latency-lean and bandwidth-lean regimes exactly
// as the real implementation would.
func (m *Model) AllreduceHierTwoLevel(ranks []int, n int) float64 {
	groups, leaders := m.splitByNode(ranks)
	if len(groups) <= 1 {
		return m.AllreduceRing(ranks, n)
	}
	intraSpec, interSpec := m.LevelSpecs()
	g0 := len(groups[0])
	even := true
	for _, g := range groups {
		if len(g) != g0 {
			even = false
			break
		}
	}
	nodes := len(groups)
	if even && topology.PickLevelAlg(intraSpec, g0, n/4) == topology.LevelRing {
		shard := (n + g0 - 1) / g0
		var intraRS, intraAG float64
		for _, grp := range groups {
			if t := m.ReduceScatterRing(grp, n); t > intraRS {
				intraRS = t
			}
			if t := m.AllgatherRing(grp, n); t > intraAG {
				intraAG = t
			}
		}
		interAlg := topology.PickLevelAlg(interSpec, nodes, shard/4)
		return intraRS + m.torusInterCost(interAlg, nodes, shard, g0) + intraAG
	}
	var intraReduce, intraBcast float64
	for _, g := range groups {
		if t := m.ReduceScatterRing(g, n) + m.AllgatherRing(g, n); t > intraReduce {
			intraReduce = t
		}
		if t := m.Bcast(g, n); t > intraBcast {
			intraBcast = t
		}
	}
	var inter float64
	switch topology.PickLevelAlg(interSpec, len(leaders), n/4) {
	case topology.LevelRecursiveDoubling:
		inter = m.AllreduceRecursiveDoubling(leaders, n)
	case topology.LevelRabenseifner:
		inter = m.AllreduceRabenseifner(leaders, n)
	default:
		inter = m.AllreduceRing(leaders, n)
	}
	return intraReduce + inter + intraBcast
}

// torusInterCost prices the concurrent inter-node phase of the torus
// composition: one allreduce of `shard` bytes over `nodes` ranks per
// local index, all `flows` of them sharing each NIC.
func (m *Model) torusInterCost(alg topology.LevelAlg, nodes, shard, flows int) float64 {
	if nodes <= 1 || shard == 0 {
		return 0
	}
	pow := 1
	for pow*2 <= nodes {
		pow *= 2
	}
	switch alg {
	case topology.LevelRecursiveDoubling:
		total := 0.0
		if pow != nodes {
			total += 2 * (m.xferShared(topology.LinkIB, shard, flows) + m.reduceTime(shard))
		}
		for dist := 1; dist < pow; dist *= 2 {
			total += m.xferShared(topology.LinkIB, shard, flows) + m.reduceTime(shard)
		}
		return total
	case topology.LevelRabenseifner:
		total := 0.0
		if pow != nodes {
			total += 2 * (m.xferShared(topology.LinkIB, shard, flows) + m.reduceTime(shard))
		}
		payload := shard / 2
		for dist := 1; dist < pow; dist *= 2 {
			total += m.xferShared(topology.LinkIB, payload, flows) + m.reduceTime(payload)
			payload /= 2
			if payload == 0 {
				payload = 1
			}
		}
		payload = shard / pow
		if payload == 0 {
			payload = 1
		}
		for dist := pow / 2; dist >= 1; dist /= 2 {
			total += m.xferShared(topology.LinkIB, payload, flows)
			payload *= 2
		}
		return total
	default: // ring
		seg := (shard + nodes - 1) / nodes
		step := m.xferShared(topology.LinkIB, seg, flows)
		return float64(nodes-1)*(step+m.reduceTime(seg)) + float64(nodes-1)*step
	}
}

// splitByNode partitions the group into per-node sub-groups and
// returns the node-leader ranks (lowest rank per node). The result
// for the most recent rank group is memoized (callers treat it as
// read-only): pricing one fused buffer used to rebuild this partition
// from a map, and at 132 GPUs that map dominated the simulator's
// allocation profile.
func (m *Model) splitByNode(ranks []int) (groups [][]int, leaders []int) {
	if c := &m.split; len(c.ranks) == len(ranks) && len(ranks) > 0 {
		same := true
		for i, r := range ranks {
			if c.ranks[i] != r {
				same = false
				break
			}
		}
		if same {
			return c.groups, c.leaders
		}
	}
	byNode := map[int][]int{} //seglint:ignore hotalloc partition miss: recomputed only when the rank group changes, then memoized
	var order []int
	for _, r := range ranks {
		n := m.Mach.Node(r)
		if _, ok := byNode[n]; !ok {
			order = append(order, n) //seglint:ignore hotalloc partition miss path, memoized
		}
		byNode[n] = append(byNode[n], r) //seglint:ignore hotalloc partition miss path, memoized
	}
	for _, n := range order {
		g := byNode[n]
		groups = append(groups, g)      //seglint:ignore hotalloc partition miss path, memoized
		leaders = append(leaders, g[0]) //seglint:ignore hotalloc partition miss path, memoized
	}
	m.split.ranks = append(m.split.ranks[:0], ranks...) //seglint:ignore hotalloc memo key copy on partition miss; capacity is retained
	m.split.groups = groups
	m.split.leaders = leaders
	return groups, leaders
}
