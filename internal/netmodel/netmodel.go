// Package netmodel turns an MPI profile plus a Summit topology into
// transfer times: point-to-point messages, and analytic cost models
// for every collective algorithm the reproduction uses (ring,
// recursive doubling, Rabenseifner, binomial broadcast, and the two
// hierarchical allreduce variants Horovod offers).
//
// All times are virtual seconds. The models are classic α–β(–γ)
// LogGP-style costs extended with the behaviours the paper's tuning
// targets: rendezvous handshakes, GPU-direct vs host-staged paths,
// chunk-pipelined large-message protocols (MV2_CUDA_BLOCK_SIZE), and
// NIC sharing when several ranks of a node communicate off-node at
// once.
package netmodel

import (
	"fmt"
	"math"

	"segscale/internal/mpiprofile"
	"segscale/internal/topology"
)

// Per-chunk software overhead of the pipelined large-message protocol
// (descriptor post + completion handling). This is what makes
// MV2_CUDA_BLOCK_SIZE have an interior optimum: small chunks pay this
// many times; big chunks pay pipeline-fill latency instead.
const chunkOverheadSec = 0.5e-6

// Host-path latency used by tiny coordination messages (Horovod
// negotiation), which travel CPU-to-CPU regardless of MPI library.
const hostAlphaSec = 1.4e-6

// Coordinator per-rank processing cost during a negotiation round.
const negotiatePerRank = 120e-9

// Model computes communication times for one (machine, MPI library)
// pair. The cost methods are pure, but the model memoizes the
// per-node partition of the most recent rank group (see splitByNode),
// so a Model must not be shared across goroutines without external
// locking. The performance simulator — the only repeated caller — is
// single-threaded by design.
type Model struct {
	Mach topology.Machine
	Prof *mpiprofile.Profile

	// ElemBytes is the wire width of one payload element: 4 (float32,
	// the zero-value default) or 2 (binary16 under fp16 compression).
	// The byte counts fed to the cost methods already reflect the wire
	// width; ElemBytes only converts bytes back to element counts for
	// the reduce-flops term, so a compressed buffer reduces the same
	// number of elements it carries.
	ElemBytes int

	// split memoizes splitByNode for the last rank group: a simulation
	// prices thousands of collectives over the same world, and the
	// partition is a pure function of the ranks.
	split struct {
		ranks   []int
		groups  [][]int
		leaders []int
	}
	// flowScratch backs ringFlowsPerNIC's per-node flow counting so
	// pricing a fused buffer does not allocate a map per call.
	flowScratch map[int]int
}

// New builds a model, validating its inputs.
func New(m topology.Machine, p *mpiprofile.Profile) (*Model, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Model{Mach: m, Prof: p}, nil
}

// MustNew is New for statically-correct inputs (tests, examples).
func MustNew(m topology.Machine, p *mpiprofile.Profile) *Model {
	mod, err := New(m, p)
	if err != nil {
		panic(err)
	}
	return mod
}

// LinkParams returns the (latency, bandwidth) the profile achieves on
// a link kind for GPU-resident buffers. For a non-GPU-direct library
// the inter-node path degrades to the host-staged parameters.
func (m *Model) LinkParams(kind topology.LinkKind) (alpha, bw float64) {
	p := m.Prof
	switch kind {
	case topology.LinkSelf:
		return 0, math.Inf(1)
	case topology.LinkNVLink:
		return p.LatIntraNVLink, p.BWNVLink
	case topology.LinkXBus:
		return p.LatIntraXBus, p.BWXBus
	case topology.LinkPCIeHost:
		return p.LatInterGPU + p.LatHostStage, p.BWStaged
	case topology.LinkIB:
		if p.GPUDirect {
			return p.LatInterGPU, p.BWInter
		}
		return p.LatInterGPU + p.LatHostStage, p.BWStaged
	default:
		panic(fmt.Sprintf("netmodel: unknown link kind %v", kind))
	}
}

// Xfer is the time to move n bytes over a link of the given kind with
// exclusive use of the link.
func (m *Model) Xfer(kind topology.LinkKind, n int) float64 {
	return m.xferShared(kind, n, 1)
}

// xferShared moves n bytes while `flows` concurrent flows share the
// link's bandwidth (latency is not shared).
func (m *Model) xferShared(kind topology.LinkKind, n int, flows int) float64 {
	if n < 0 {
		panic("netmodel: negative message size")
	}
	if n == 0 || kind == topology.LinkSelf {
		return 0
	}
	if flows < 1 {
		flows = 1
	}
	alpha, bw := m.LinkParams(kind)
	bw /= float64(flows)
	p := m.Prof
	t := alpha
	if n > p.EagerLimit {
		t += p.RndvOverhead
	}
	// Large GPU messages crossing nodes go through the chunk-pipelined
	// host-staging protocol (for GPU-direct libraries only above
	// MV2_GPUDIRECT_LIMIT; tiny messages ride GDR RDMA directly).
	// The first chunk's device→host copy cannot overlap anything —
	// that pipeline-fill cost is what penalises oversized chunks,
	// while per-chunk software overhead penalises undersized ones.
	interNode := kind == topology.LinkIB || kind == topology.LinkPCIeHost
	pipelined := interNode && n > p.EagerLimit && (!p.GPUDirect || n > p.GPUDirectLimit)
	if pipelined {
		chunks := (n + p.CUDABlockSize - 1) / p.CUDABlockSize
		fill := float64(min(p.CUDABlockSize, n)) / p.BWStaged
		t += fill + float64(n)/bw + float64(chunks-1)*chunkOverheadSec
		return t
	}
	return t + float64(n)/bw
}

// P2P is the time for a single message between two global ranks.
func (m *Model) P2P(a, b, n int) float64 {
	return m.Xfer(m.Mach.Link(a, b), n)
}

// reduceTime is the elementwise-combine time for n wire bytes:
// n/ElemBytes elements at the profile's reduce throughput.
func (m *Model) reduceTime(n int) float64 {
	eb := m.ElemBytes
	if eb == 0 {
		eb = 4
	}
	return float64(n) / float64(eb) / m.Prof.ReduceFlops
}

// worstKind reports the slowest link kind appearing between
// consecutive ranks of the group (ring order) and how many of the
// group's ranks on one node would use the NIC concurrently in an
// all-pairs step.
func (m *Model) worstKind(ranks []int) topology.LinkKind {
	worst := topology.LinkSelf
	for i := range ranks {
		j := (i + 1) % len(ranks)
		k := m.Mach.Link(ranks[i], ranks[j])
		if k > worst {
			worst = k
		}
	}
	return worst
}

// spansNodes reports whether the group crosses node boundaries.
func (m *Model) spansNodes(ranks []int) bool {
	for _, r := range ranks[1:] {
		if m.Mach.Node(r) != m.Mach.Node(ranks[0]) {
			return true
		}
	}
	return false
}

// ringFlowsPerNIC counts, for a ring laid out in rank order, the
// maximum number of ring edges leaving any single node. With
// contiguous placement (6 consecutive ranks per node) this is 1; with
// strided or partial placement it can be higher.
func (m *Model) ringFlowsPerNIC(ranks []int) int {
	if !m.spansNodes(ranks) {
		return 0
	}
	if m.flowScratch == nil {
		m.flowScratch = map[int]int{} //seglint:ignore hotalloc per-node flow counter allocated once per Model, then cleared and reused each call
	}
	out := m.flowScratch
	clear(out)
	maxFlows := 0
	for i := range ranks {
		j := (i + 1) % len(ranks)
		if m.Mach.Node(ranks[i]) != m.Mach.Node(ranks[j]) {
			out[m.Mach.Node(ranks[i])]++
			if out[m.Mach.Node(ranks[i])] > maxFlows {
				maxFlows = out[m.Mach.Node(ranks[i])]
			}
		}
	}
	return maxFlows
}

// AllreduceRing is the classic bandwidth-optimal ring allreduce:
// a reduce-scatter pass of p−1 steps followed by an allgather pass of
// p−1 steps, each moving ceil(n/p)-byte segments concurrently on all
// ring edges. Step time is set by the slowest edge.
func (m *Model) AllreduceRing(ranks []int, n int) float64 {
	p := len(ranks)
	if p <= 1 || n == 0 {
		return 0
	}
	seg := (n + p - 1) / p
	kind := m.worstKind(ranks)
	flows := 1
	if kind == topology.LinkIB {
		flows = m.ringFlowsPerNIC(ranks)
	}
	step := m.xferShared(kind, seg, flows)
	// Reduce-scatter steps also pay the elementwise combine.
	return float64(p-1)*(step+m.reduceTime(seg)) + float64(p-1)*step
}

// AllreduceRecursiveDoubling exchanges the full vector log2(p) times.
// Latency-optimal for small messages; each off-node step has every
// rank of a node crossing the NIC simultaneously.
func (m *Model) AllreduceRecursiveDoubling(ranks []int, n int) float64 {
	p := len(ranks)
	if p <= 1 || n == 0 {
		return 0
	}
	total := 0.0
	// Non-power-of-two groups fold the remainder in/out with an extra
	// exchange at each end (MPICH-style).
	pow := 1
	for pow*2 <= p {
		pow *= 2
	}
	rem := p - pow
	if rem > 0 {
		total += 2 * (m.stepTime(ranks, 1, n) + m.reduceTime(n))
	}
	for dist := 1; dist < pow; dist *= 2 {
		total += m.stepTime(ranks, dist, n) + m.reduceTime(n)
	}
	return total
}

// AllreduceRabenseifner is recursive-halving reduce-scatter followed
// by recursive-doubling allgather: log-latency with the ring's
// bandwidth term.
func (m *Model) AllreduceRabenseifner(ranks []int, n int) float64 {
	p := len(ranks)
	if p <= 1 || n == 0 {
		return 0
	}
	pow := 1
	for pow*2 <= p {
		pow *= 2
	}
	total := 0.0
	if p != pow {
		total += 2 * (m.stepTime(ranks, 1, n) + m.reduceTime(n))
	}
	// Reduce-scatter: distances grow, payload halves.
	payload := n / 2
	for dist := 1; dist < pow; dist *= 2 {
		total += m.stepTime(ranks, dist, payload) + m.reduceTime(payload)
		payload /= 2
		if payload == 0 {
			payload = 1
		}
	}
	// Allgather mirror: payload doubles back up.
	payload = n / pow
	if payload == 0 {
		payload = 1
	}
	for dist := pow / 2; dist >= 1; dist /= 2 {
		total += m.stepTime(ranks, dist, payload)
		payload *= 2
	}
	return total
}

// stepTime is the cost of one pairwise-exchange step at the given rank
// distance within the group, accounting for NIC sharing when the step
// crosses nodes.
func (m *Model) stepTime(ranks []int, dist, n int) float64 {
	p := len(ranks)
	worst := topology.LinkSelf
	crossing := 0
	for i := 0; i < p; i++ {
		j := i ^ dist
		if j >= p {
			j = (i + dist) % p
		}
		k := m.Mach.Link(ranks[i], ranks[j])
		if k > worst {
			worst = k
		}
		if k == topology.LinkIB && m.Mach.Node(ranks[i]) == m.Mach.Node(ranks[0]) {
			crossing++
		}
	}
	flows := 1
	if worst == topology.LinkIB {
		// In a distance-d exchange, every rank of a node whose
		// partner is off-node crosses the NIC at once.
		flows = crossing
		if flows < 1 {
			flows = 1
		}
	}
	return m.xferShared(worst, n, flows)
}

// Bcast broadcasts n bytes: binomial tree for small messages,
// van de Geijn scatter+allgather for large ones (what MPI libraries
// switch to, since a tree of full-size messages wastes bandwidth).
func (m *Model) Bcast(ranks []int, n int) float64 {
	p := len(ranks)
	if p <= 1 || n == 0 {
		return 0
	}
	steps := int(math.Ceil(math.Log2(float64(p))))
	kind := m.worstKind(ranks)
	if n <= smallMessageLimit {
		return float64(steps) * m.Xfer(kind, n)
	}
	seg := (n + p - 1) / p
	scatter := float64(steps)*m.latencyOnly(kind) + m.Xfer(kind, n-seg)
	return scatter + m.AllgatherRing(ranks, n)
}

// latencyOnly is the per-message constant cost on a link.
func (m *Model) latencyOnly(kind topology.LinkKind) float64 {
	alpha, _ := m.LinkParams(kind)
	return alpha
}

// ReduceScatterRing is the first half of the ring allreduce.
func (m *Model) ReduceScatterRing(ranks []int, n int) float64 {
	p := len(ranks)
	if p <= 1 || n == 0 {
		return 0
	}
	seg := (n + p - 1) / p
	kind := m.worstKind(ranks)
	flows := 1
	if kind == topology.LinkIB {
		flows = m.ringFlowsPerNIC(ranks)
	}
	step := m.xferShared(kind, seg, flows)
	return float64(p-1) * (step + m.reduceTime(seg))
}

// AllgatherRing is the second half of the ring allreduce.
func (m *Model) AllgatherRing(ranks []int, n int) float64 {
	p := len(ranks)
	if p <= 1 || n == 0 {
		return 0
	}
	seg := (n + p - 1) / p
	kind := m.worstKind(ranks)
	flows := 1
	if kind == topology.LinkIB {
		flows = m.ringFlowsPerNIC(ranks)
	}
	return float64(p-1) * m.xferShared(kind, seg, flows)
}

// NegotiationTime models one Horovod coordinator round over p ranks:
// a gather of ready-tensor bitmaps to rank 0 and a broadcast of the
// fused-response list, plus per-rank coordinator processing. These
// are tiny host-memory messages, so the cost is latency-dominated and
// nearly library-independent.
func NegotiationTime(p int) float64 {
	if p <= 1 {
		return 0
	}
	steps := math.Ceil(math.Log2(float64(p)))
	return 2*steps*hostAlphaSec + float64(p)*negotiatePerRank
}
