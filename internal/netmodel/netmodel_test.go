package netmodel

import (
	"math"
	"testing"
	"testing/quick"

	"segscale/internal/mpiprofile"
	"segscale/internal/topology"
)

const MiB = 1 << 20

func worldModel(nodes int, prof *mpiprofile.Profile) *Model {
	return MustNew(topology.Summit(nodes), prof)
}

func TestNewValidates(t *testing.T) {
	if _, err := New(topology.Machine{Nodes: 0, GPUsPer: 6}, mpiprofile.MV2GDR()); err == nil {
		t.Error("invalid machine accepted")
	}
	bad := mpiprofile.MV2GDR()
	bad.BWInter = 0
	if _, err := New(topology.Summit(1), bad); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestXferZeroAndSelf(t *testing.T) {
	m := worldModel(2, mpiprofile.MV2GDR())
	if m.Xfer(topology.LinkIB, 0) != 0 {
		t.Error("zero bytes should be free")
	}
	if m.Xfer(topology.LinkSelf, 1<<20) != 0 {
		t.Error("self transfer should be free")
	}
	if m.P2P(3, 3, 1024) != 0 {
		t.Error("rank-to-self should be free")
	}
}

func TestXferNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative size did not panic")
		}
	}()
	worldModel(1, mpiprofile.MV2GDR()).Xfer(topology.LinkNVLink, -1)
}

func TestXferMonotoneInSize(t *testing.T) {
	m := worldModel(2, mpiprofile.MV2GDR())
	f := func(a, b uint32) bool {
		x, y := int(a%(64*MiB)), int(b%(64*MiB))
		if x > y {
			x, y = y, x
		}
		return m.Xfer(topology.LinkIB, x) <= m.Xfer(topology.LinkIB, y)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyOrdering(t *testing.T) {
	// Small-message time: NVLink < XBus < IB for both libraries.
	for _, prof := range []*mpiprofile.Profile{mpiprofile.Spectrum(), mpiprofile.MV2GDR()} {
		m := worldModel(2, prof)
		nv := m.Xfer(topology.LinkNVLink, 8)
		xb := m.Xfer(topology.LinkXBus, 8)
		ib := m.Xfer(topology.LinkIB, 8)
		if !(nv < xb && xb < ib) {
			t.Errorf("%s: latency ordering violated: nv=%g xb=%g ib=%g", prof.Name, nv, xb, ib)
		}
	}
}

func TestGDRBeatsStagingInterNode(t *testing.T) {
	spec := worldModel(4, mpiprofile.Spectrum())
	mv2 := worldModel(4, mpiprofile.MV2GDR())
	for _, n := range []int{8, 1024, 64 << 10, 1 << 20, 64 << 20} {
		if mv2.Xfer(topology.LinkIB, n) >= spec.Xfer(topology.LinkIB, n) {
			t.Errorf("n=%d: MV2-GDR (%g) not faster than Spectrum (%g)",
				n, mv2.Xfer(topology.LinkIB, n), spec.Xfer(topology.LinkIB, n))
		}
	}
}

func TestChunkSizeHasInteriorOptimum(t *testing.T) {
	// Sweeping MV2_CUDA_BLOCK_SIZE for a 64 MiB transfer must show a
	// minimum away from both extremes.
	times := map[int]float64{}
	sizes := []int{16 << 10, 64 << 10, 256 << 10, 1 << 20, 8 << 20, 64 << 20}
	for _, cs := range sizes {
		p := mpiprofile.MV2GDR()
		p.CUDABlockSize = cs
		times[cs] = worldModel(2, p).Xfer(topology.LinkIB, 64*MiB)
	}
	best := sizes[0]
	for _, cs := range sizes {
		if times[cs] < times[best] {
			best = cs
		}
	}
	if best == sizes[0] || best == sizes[len(sizes)-1] {
		t.Errorf("chunk-size optimum at boundary (%d): %v", best, times)
	}
}

func TestRingAllreduceSinglePair(t *testing.T) {
	m := worldModel(1, mpiprofile.MV2GDR())
	ranks := []int{0, 1}
	n := 8 * MiB
	got := m.AllreduceRing(ranks, n)
	// p=2: 1 reduce-scatter step + 1 allgather step of n/2 each.
	step := m.Xfer(topology.LinkNVLink, n/2)
	want := (step + m.reduceTime(n/2)) + step
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ring p=2: got %g want %g", got, want)
	}
}

func TestAllreduceTrivialGroups(t *testing.T) {
	m := worldModel(2, mpiprofile.MV2GDR())
	for _, alg := range Algorithms() {
		if tm := m.Allreduce(alg, []int{3}, 1*MiB); tm != 0 {
			t.Errorf("%v: single-rank allreduce should be free, got %g", alg, tm)
		}
		if tm := m.Allreduce(alg, []int{0, 1, 2, 3}, 0); tm != 0 {
			t.Errorf("%v: zero-byte allreduce should be free, got %g", alg, tm)
		}
	}
}

func TestRecursiveDoublingBeatsRingSmall(t *testing.T) {
	m := worldModel(4, mpiprofile.MV2GDR())
	ranks := m.WorldRanks()
	small := 4 << 10
	if rd, ring := m.AllreduceRecursiveDoubling(ranks, small), m.AllreduceRing(ranks, small); rd >= ring {
		t.Errorf("small message: recursive doubling (%g) should beat ring (%g)", rd, ring)
	}
}

func TestRingBeatsRecursiveDoublingLarge(t *testing.T) {
	m := worldModel(4, mpiprofile.MV2GDR())
	ranks := m.WorldRanks()
	large := 64 * MiB
	if rd, ring := m.AllreduceRecursiveDoubling(ranks, large), m.AllreduceRing(ranks, large); ring >= rd {
		t.Errorf("large message: ring (%g) should beat recursive doubling (%g)", ring, rd)
	}
}

func TestHierarchicalBeatsFlatRingAtScale(t *testing.T) {
	// At 132 GPUs the flat ring pays 262 IB latencies per allreduce.
	// The torus variant must win for the paper-size fused buffer; the
	// leader variant (Horovod's HOROVOD_HIERARCHICAL_ALLREDUCE) wins
	// in the latency-bound small-buffer regime but loses bandwidth-
	// bound — exactly the trade-off tuning studies report.
	m := worldModel(22, mpiprofile.MV2GDR())
	ranks := m.WorldRanks()

	large := 64 * MiB
	flatL := m.AllreduceRing(ranks, large)
	if torus := m.AllreduceHierTorus(ranks, large); torus >= flatL {
		t.Errorf("hier-torus (%g) not faster than flat ring (%g) at %d bytes", torus, flatL, large)
	}

	small := 1 * MiB
	flatS := m.AllreduceRing(ranks, small)
	if leader := m.AllreduceHierLeader(ranks, small); leader >= flatS {
		t.Errorf("hier-leader (%g) not faster than flat ring (%g) at %d bytes", leader, flatS, small)
	}
}

func TestHierarchicalSingleNodeFallsBack(t *testing.T) {
	m := worldModel(1, mpiprofile.MV2GDR())
	ranks := m.WorldRanks()
	n := 16 * MiB
	if got, want := m.AllreduceHierLeader(ranks, n), m.AllreduceRing(ranks, n); got != want {
		t.Errorf("hier-leader single node: got %g want ring %g", got, want)
	}
	if got, want := m.AllreduceHierTorus(ranks, n), m.AllreduceRing(ranks, n); got != want {
		t.Errorf("hier-torus single node: got %g want ring %g", got, want)
	}
}

func TestAllreduceScalesWithNodes(t *testing.T) {
	// More nodes → longer allreduce for fixed n (same algorithm).
	n := 64 * MiB
	prev := 0.0
	for _, nodes := range []int{2, 4, 8, 16, 22} {
		m := worldModel(nodes, mpiprofile.MV2GDR())
		tm := m.AllreduceHierTorus(m.WorldRanks(), n)
		if tm <= prev {
			t.Errorf("allreduce time not increasing at %d nodes: %g <= %g", nodes, tm, prev)
		}
		prev = tm
	}
}

func TestAllreduceMV2FasterThanSpectrumEverywhere(t *testing.T) {
	for _, nodes := range []int{1, 2, 8, 22} {
		for _, n := range []int{8 << 10, 1 << 20, 64 << 20, 164 << 20} {
			spec := worldModel(nodes, mpiprofile.Spectrum())
			mv2 := worldModel(nodes, mpiprofile.MV2GDR())
			ranks := spec.WorldRanks()
			ts := spec.Allreduce(AlgAuto, ranks, n)
			tm := mv2.Allreduce(AlgAuto, ranks, n)
			if tm >= ts {
				t.Errorf("nodes=%d n=%d: MV2 (%g) not faster than Spectrum (%g)", nodes, n, tm, ts)
			}
		}
	}
}

func TestPickAuto(t *testing.T) {
	m := worldModel(4, mpiprofile.MV2GDR())
	ranks := m.WorldRanks()
	if got := m.Pick(AlgAuto, ranks, 1024); got != AlgRecursiveDoubling {
		t.Errorf("small message picked %v", got)
	}
	if got := m.Pick(AlgAuto, ranks, 64*MiB); got != AlgHierTorus {
		t.Errorf("large multi-node message picked %v", got)
	}
	single := worldModel(1, mpiprofile.MV2GDR())
	if got := single.Pick(AlgAuto, single.WorldRanks(), 64*MiB); got != AlgRing {
		t.Errorf("single-node large message picked %v", got)
	}
	if got := m.Pick(AlgRing, ranks, 10); got != AlgRing {
		t.Errorf("explicit algorithm overridden: %v", got)
	}
}

func TestAlgorithmNames(t *testing.T) {
	for _, a := range Algorithms() {
		name := a.String()
		back, err := AlgorithmByName(name)
		if err != nil || back != a {
			t.Errorf("round trip failed for %v (%q): %v", a, name, err)
		}
	}
	if _, err := AlgorithmByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
	if Algorithm(42).String() != "Algorithm(42)" {
		t.Error("fallback String wrong")
	}
}

func TestNegotiationGrowsWithRanks(t *testing.T) {
	if NegotiationTime(1) != 0 {
		t.Error("single rank needs no negotiation")
	}
	prev := 0.0
	for _, p := range []int{2, 6, 24, 132} {
		tm := NegotiationTime(p)
		if tm <= prev {
			t.Errorf("negotiation time not increasing at p=%d", p)
		}
		prev = tm
	}
	// Sanity: 132-rank negotiation should be tens of microseconds,
	// not milliseconds.
	if n := NegotiationTime(132); n > 1e-3 || n < 1e-6 {
		t.Errorf("negotiation time for 132 ranks implausible: %g", n)
	}
}

// Property: all allreduce algorithms are monotone in message size.
func TestPropertyAllreduceMonotone(t *testing.T) {
	m := worldModel(3, mpiprofile.Spectrum())
	ranks := m.WorldRanks()
	f := func(a, b uint32) bool {
		x, y := int(a%(32*MiB))+1, int(b%(32*MiB))+1
		if x > y {
			x, y = y, x
		}
		for _, alg := range Algorithms() {
			if m.Allreduce(alg, ranks, x) > m.Allreduce(alg, ranks, y)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: P2P time is symmetric in rank order.
func TestPropertyP2PSymmetric(t *testing.T) {
	m := worldModel(3, mpiprofile.MV2GDR())
	f := func(a, b uint8, n uint32) bool {
		ra, rb := int(a)%m.Mach.Ranks(), int(b)%m.Mach.Ranks()
		sz := int(n % (8 * MiB))
		return m.P2P(ra, rb, sz) == m.P2P(rb, ra, sz)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRingFlowsContiguousPlacement(t *testing.T) {
	m := worldModel(4, mpiprofile.MV2GDR())
	if got := m.ringFlowsPerNIC(m.WorldRanks()); got != 1 {
		t.Errorf("contiguous ring should have 1 NIC flow per node, got %d", got)
	}
	// Round-robin placement puts every edge across nodes.
	strided := []int{0, 6, 12, 18, 1, 7, 13, 19}
	if got := m.ringFlowsPerNIC(strided); got < 2 {
		t.Errorf("strided ring should congest the NIC, got %d flows", got)
	}
}

func TestHierTwoLevelBeatsFlatRingAt1056(t *testing.T) {
	// The 176-node × 6-GPU sweep past the paper's 132 GPUs: the flat
	// ring pays 2·1055 IB latencies per allreduce, the topology-aware
	// two-level composition pays two NVLink ring phases plus a log-
	// depth inter-node phase. It must win across the fused-buffer
	// regime, and must also beat the fixed-algorithm hierarchical
	// variants at the paper's fusion threshold (the per-level pick is
	// the point of the algorithm).
	m := worldModel(176, mpiprofile.MV2GDR())
	ranks := m.WorldRanks()
	for _, n := range []int{1 * MiB, 16 * MiB, 64 * MiB} {
		flat := m.AllreduceRing(ranks, n)
		two := m.AllreduceHierTwoLevel(ranks, n)
		if two >= flat {
			t.Errorf("hier-2level (%g) not faster than flat ring (%g) at %d bytes", two, flat, n)
		}
	}
	n := 64 * MiB
	two := m.AllreduceHierTwoLevel(ranks, n)
	if leader := m.AllreduceHierLeader(ranks, n); two >= leader {
		t.Errorf("hier-2level (%g) not faster than hier-leader (%g) at %d bytes", two, leader, n)
	}
}

func TestHierTwoLevelSingleNodeFallsBack(t *testing.T) {
	m := worldModel(1, mpiprofile.MV2GDR())
	ranks := m.WorldRanks()
	n := 16 * MiB
	if got, want := m.AllreduceHierTwoLevel(ranks, n), m.AllreduceRing(ranks, n); got != want {
		t.Errorf("hier-2level single node: got %g want ring %g", got, want)
	}
}

func TestLevelSpecsMatchProfile(t *testing.T) {
	prof := mpiprofile.MV2GDR()
	m := worldModel(2, prof)
	intra, inter := m.LevelSpecs()
	if !intra.Valid() || !inter.Valid() {
		t.Fatalf("invalid level specs: %+v / %+v", intra, inter)
	}
	// Full 6-GPU nodes span both triads, so the intra spec must be
	// X-Bus class, not NVLink class.
	if intra.AlphaSec != prof.LatIntraXBus {
		t.Errorf("intra alpha %g, want X-Bus %g", intra.AlphaSec, prof.LatIntraXBus)
	}
	if inter.BWBytesPerSec != prof.BWInter {
		t.Errorf("inter bandwidth %g, want %g", inter.BWBytesPerSec, prof.BWInter)
	}
	triad := MustNew(topology.Machine{Nodes: 2, GPUsPer: 3}, prof)
	intra, _ = triad.LevelSpecs()
	if intra.AlphaSec != prof.LatIntraNVLink {
		t.Errorf("triad intra alpha %g, want NVLink %g", intra.AlphaSec, prof.LatIntraNVLink)
	}
}
