package modelhealth

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// LedgerSchema versions the health-ledger JSONL format.
const LedgerSchema = 1

// Header is the ledger's first JSONL line. The health_schema field
// doubles as the format sniff for cmd/seg-compare.
type Header struct {
	HealthSchema int   `json:"health_schema"`
	World        int   `json:"world"`
	Rows         int   `json:"rows"`
	Alerts       int   `json:"alerts"`
	LastStep     int64 `json:"last_step"`
}

// Ledger is a parsed health ledger.
type Ledger struct {
	Header Header
	Rows   []Row
}

// sortRows orders rows by (step, rank, inc, kind, layer) — a total
// order over everything a run can produce, so the serialised ledger
// is byte-identical across same-seed reruns regardless of goroutine
// interleaving.
func sortRows(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Step != b.Step {
			return a.Step < b.Step
		}
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.Inc != b.Inc {
			return a.Inc < b.Inc
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Layer < b.Layer
	})
}

// WriteLedger serialises the plane's rows as deterministic JSONL: one
// header line, then one row per line in (step, rank, inc, kind,
// layer) order.
func (p *Plane) WriteLedger(w io.Writer) error {
	rows := p.Rows()
	sortRows(rows)
	world := 0
	var last int64
	for _, r := range rows {
		if r.Rank+1 > world {
			world = r.Rank + 1
		}
		if r.Step > last {
			last = r.Step
		}
	}
	h := Header{
		HealthSchema: LedgerSchema,
		World:        world,
		Rows:         len(rows),
		Alerts:       len(p.Alerts()) + p.DroppedAlerts(),
		LastStep:     last,
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(h); err != nil {
		return err
	}
	for i := range rows {
		if err := enc.Encode(&rows[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLedger parses a health-ledger JSONL stream, validating the
// schema and the header/row count agreement.
func ReadLedger(r io.Reader) (*Ledger, error) {
	dec := json.NewDecoder(r)
	var h Header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("modelhealth: ledger header: %w", err)
	}
	if h.HealthSchema != LedgerSchema {
		return nil, fmt.Errorf("modelhealth: ledger schema %d, want %d", h.HealthSchema, LedgerSchema)
	}
	l := &Ledger{Header: h}
	for {
		var row Row
		if err := dec.Decode(&row); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("modelhealth: ledger row %d: %w", len(l.Rows), err)
		}
		l.Rows = append(l.Rows, row)
	}
	if len(l.Rows) != h.Rows {
		return nil, fmt.Errorf("modelhealth: header says %d rows, found %d", h.Rows, len(l.Rows))
	}
	return l, nil
}

// Validate checks ledger invariants beyond what ReadLedger enforces:
// row ordering, rank bounds, and value sanity.
func (l *Ledger) Validate() error {
	for i, r := range l.Rows {
		if r.Rank < 0 || r.Rank >= l.Header.World {
			return fmt.Errorf("modelhealth: row %d rank %d outside world %d", i, r.Rank, l.Header.World)
		}
		if r.Kind != "grad" && r.Kind != "act" {
			return fmt.Errorf("modelhealth: row %d has kind %q", i, r.Kind)
		}
		if r.Layer == "" {
			return fmt.Errorf("modelhealth: row %d has no layer", i)
		}
		if r.DeadFrac < 0 || r.DeadFrac > 1 {
			return fmt.Errorf("modelhealth: row %d dead_frac %g outside [0,1]", i, r.DeadFrac)
		}
		if r.NonFinite < 0 || r.GradL2 < 0 || r.WeightL2 < 0 || r.UpdRatio < 0 || r.Std < 0 {
			return fmt.Errorf("modelhealth: row %d has a negative magnitude: %+v", i, r)
		}
		if i > 0 {
			a := l.Rows[i-1]
			after := a.Step < r.Step ||
				(a.Step == r.Step && (a.Rank < r.Rank ||
					(a.Rank == r.Rank && (a.Inc < r.Inc ||
						(a.Inc == r.Inc && (a.Kind < r.Kind ||
							(a.Kind == r.Kind && a.Layer < r.Layer)))))))
			if !after {
				return fmt.Errorf("modelhealth: rows %d/%d out of (step,rank,inc,kind,layer) order", i-1, i)
			}
		}
	}
	return nil
}

// LayerSummary is one layer's most recent statistics, as surfaced on
// /debug/health.
type LayerSummary struct {
	Layer     string  `json:"layer"`
	Kind      string  `json:"kind"`
	Step      int64   `json:"step"`
	GradL2    float64 `json:"grad_l2,omitempty"`
	WeightL2  float64 `json:"weight_l2,omitempty"`
	UpdRatio  float64 `json:"upd_ratio,omitempty"`
	Mean      float64 `json:"mean,omitempty"`
	Std       float64 `json:"std,omitempty"`
	DeadFrac  float64 `json:"dead_frac,omitempty"`
	NonFinite int     `json:"nonfinite,omitempty"`
}

// Snapshot is the live /debug/health view: totals, the alert log,
// and each layer's latest row.
type Snapshot struct {
	Rows          int            `json:"rows"`
	LastStep      int64          `json:"last_step"`
	SentinelTrips int            `json:"sentinel_trips"`
	DroppedAlerts int            `json:"dropped_alerts"`
	Alerts        []Alert        `json:"alerts"`
	Layers        []LayerSummary `json:"layers"`
}

// Snapshot summarises the plane's current state. Layers appear in
// first-observation order; each carries its most recent row (rank 0
// preferred so the summary tracks one replica coherently).
func (p *Plane) Snapshot() Snapshot {
	rows := p.Rows()
	alerts := p.Alerts()
	s := Snapshot{Rows: len(rows), Alerts: alerts, DroppedAlerts: p.DroppedAlerts()}
	s.SentinelTrips = len(alerts) + s.DroppedAlerts
	type key struct{ layer, kind string }
	idx := map[key]int{}
	for _, r := range rows {
		if r.Step > s.LastStep {
			s.LastStep = r.Step
		}
		if r.Rank != 0 {
			continue
		}
		k := key{r.Layer, r.Kind}
		i, ok := idx[k]
		if !ok {
			i = len(s.Layers)
			idx[k] = i
			s.Layers = append(s.Layers, LayerSummary{Layer: r.Layer, Kind: r.Kind})
		}
		if r.Step >= s.Layers[i].Step {
			s.Layers[i] = LayerSummary{
				Layer: r.Layer, Kind: r.Kind, Step: r.Step,
				GradL2: r.GradL2, WeightL2: r.WeightL2, UpdRatio: r.UpdRatio,
				Mean: r.Mean, Std: r.Std, DeadFrac: r.DeadFrac, NonFinite: r.NonFinite,
			}
		}
	}
	return s
}
