// Package modelhealth is the training-health plane: per-layer
// gradient and activation statistics collected inside the per-rank
// train step, divergence sentinels with full (layer, rank, step,
// incarnation) provenance, and a deterministic per-run health ledger.
//
// The systems-side observability (telemetry spans, the efficiency
// monitor, the attribution ledger) sees img/s and wire bytes; this
// package watches the *model* — gradient L2 norms, update-to-weight
// ratios, dead-ReLU fractions, NaN/Inf sentinels — so divergence at
// large batch or a thrashing loss scale is caught at step granularity
// instead of surfacing as a silently cratered mIOU.
//
// One Plane serves a run; each rank incarnation draws a Collector
// from it. Collectors sit on the //seglint:hotpath train step, so
// their steady state is allocation-free: per-layer slots and the
// staging row buffer are grown once on the first observed step and
// reused for the rest of the incarnation.
package modelhealth

import (
	"fmt"
	"math"
	"sync"

	"segscale/internal/nn"
	"segscale/internal/telemetry"
	"segscale/internal/tensor"
)

// Alert kinds. A sentinel trip names the offending layer, rank, step
// and incarnation.
const (
	// AlertNonFiniteGrad fires when a parameter's gradient contains
	// NaN or ±Inf after the allreduce.
	AlertNonFiniteGrad = "nonfinite_grad"
	// AlertNonFiniteAct fires when a tapped activation contains NaN
	// or ±Inf.
	AlertNonFiniteAct = "nonfinite_act"
	// AlertUpdateRatio fires when lr·‖g‖/‖w‖ exceeds
	// Config.UpdRatioMax — the update would move a layer by more than
	// the configured fraction of its own magnitude. Zero-norm
	// parameters are exempt (the ratio is undefined there).
	AlertUpdateRatio = "update_ratio"
	// AlertDeadReLU fires when a tapped activation's zero fraction
	// reaches Config.DeadFracMax.
	AlertDeadReLU = "dead_relu"
)

// maxAlerts caps the retained alert log; a diverging run trips the
// same sentinel every step and must not grow memory without bound.
// Later alerts are dropped (counted in DroppedAlerts), mirroring the
// efficiency monitor's alert-log policy.
const maxAlerts = 1024

// Config tunes collection cadence and sentinel thresholds.
type Config struct {
	// Every collects statistics every Every-th step (default 1:
	// every step). Raising it trades step-granular provenance for
	// less ledger volume on long runs.
	Every int
	// UpdRatioMax is the update-to-weight ratio sentinel threshold.
	// 0 picks the default 10 (an update an order of magnitude larger
	// than the weights themselves — far beyond anything a converging
	// run produces, immediately hit by a blown-up learning rate);
	// negative disables the sentinel.
	UpdRatioMax float64
	// DeadFracMax trips the dead-ReLU sentinel when a tapped
	// activation's zero fraction reaches it. 0 disables (early
	// training legitimately passes through mostly-dead layers).
	DeadFracMax float64
	// OnAlert, when non-nil, is invoked synchronously from the rank
	// goroutine that tripped a sentinel, once per recorded alert —
	// the hook CLI wiring uses to dump a flight-recorder trace.
	OnAlert func(Alert)
}

func (c Config) withDefaults() Config {
	if c.Every <= 0 {
		c.Every = 1
	}
	if c.UpdRatioMax == 0 {
		c.UpdRatioMax = 10
	}
	return c
}

// Alert is one sentinel trip with full provenance.
type Alert struct {
	Seq       int     `json:"seq"`
	Kind      string  `json:"kind"`
	Layer     string  `json:"layer"`
	Rank      int     `json:"rank"`
	Inc       int     `json:"inc"`
	Step      int64   `json:"step"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Msg       string  `json:"msg"`
}

// Row is one ledger row: the statistics of one layer (gradient or
// activation view) at one step on one rank. Non-finite values never
// reach the float fields — they are counted in NonFinite and excluded
// from the moments, keeping the JSONL encodable and the gate's
// distributions well-defined.
type Row struct {
	Step      int64   `json:"step"`
	Rank      int     `json:"rank"`
	Inc       int     `json:"inc"`
	Kind      string  `json:"kind"` // "grad" or "act"
	Layer     string  `json:"layer"`
	GradL2    float64 `json:"grad_l2,omitempty"`
	WeightL2  float64 `json:"weight_l2,omitempty"`
	UpdRatio  float64 `json:"upd_ratio,omitempty"`
	Mean      float64 `json:"mean,omitempty"`
	Std       float64 `json:"std,omitempty"`
	DeadFrac  float64 `json:"dead_frac,omitempty"`
	NonFinite int     `json:"nonfinite,omitempty"`
}

// Plane is the run-level health plane: it owns the ledger rows and
// the alert log, and hands out per-rank Collectors.
type Plane struct {
	cfg Config

	mu      sync.Mutex
	rows    []Row
	alerts  []Alert
	dropped int
}

// New creates a health plane with defaults applied.
func New(cfg Config) *Plane {
	return &Plane{cfg: cfg.withDefaults()}
}

// Rank creates the collector one rank incarnation hooks into its
// train step. The probe may be nil (metrics off, ledger still on).
func (p *Plane) Rank(rank, inc int, probe *telemetry.Probe) *Collector {
	return &Collector{
		plane:     p,
		rank:      rank,
		inc:       inc,
		probe:     probe,
		gradHist:  probe.Histogram("model_health_grad_l2_norm", telemetry.ExpBuckets(1e-4, 4, 16)),
		updHist:   probe.Histogram("model_health_update_weight_ratio", telemetry.ExpBuckets(1e-7, 4, 16)),
		deadHist:  probe.Histogram("model_health_act_dead_ratio", telemetry.ExpBuckets(0.01, 2, 8)),
		nonfinite: probe.Counter("model_health_nonfinite_total"),
		trips:     probe.Counter("model_health_sentinel_trips_total"),
		index:     map[string]*actStat{},
	}
}

// Rows returns a copy of the ledger rows collected so far.
func (p *Plane) Rows() []Row {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Row, len(p.rows))
	copy(out, p.rows)
	return out
}

// Alerts returns a copy of the retained alert log.
func (p *Plane) Alerts() []Alert {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Alert, len(p.alerts))
	copy(out, p.alerts)
	return out
}

// DroppedAlerts returns how many alerts were discarded past the
// retention cap.
func (p *Plane) DroppedAlerts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

func (p *Plane) appendRows(rows []Row) {
	p.mu.Lock()
	p.rows = append(p.rows, rows...) //seglint:ignore hotalloc ledger growth doubles capacity; amortised over the run and absent from warm steady-state windows
	p.mu.Unlock()
}

// addAlert records a (seq-stamped to count drops, like the efficiency
// monitor's log) and returns it; the OnAlert callback runs outside
// the plane lock.
func (p *Plane) addAlert(a Alert) Alert {
	p.mu.Lock()
	a.Seq = len(p.alerts) + p.dropped
	if len(p.alerts) < maxAlerts {
		p.alerts = append(p.alerts, a) //seglint:ignore hotalloc sentinel trips are the diverging-run path, not steady state
	} else {
		p.dropped++
	}
	p.mu.Unlock()
	if p.cfg.OnAlert != nil {
		p.cfg.OnAlert(a) //seglint:ignore hotalloc alert hook runs only on sentinel trips, never in a healthy steady state
	}
	return a
}

// actStat accumulates one tapped layer's activation statistics for
// the current step.
type actStat struct {
	layer        string
	count, zeros int
	nonfinite    int
	sum, sumSq   float64
}

// Collector is one rank incarnation's hot-path hook. It implements
// nn.ActivationTap; BeginStep/CollectUpdate/EndStep are nil-safe so
// the trainer calls them unconditionally.
type Collector struct {
	plane *Plane
	rank  int
	inc   int
	probe *telemetry.Probe

	gradHist  *telemetry.Histogram
	updHist   *telemetry.Histogram
	deadHist  *telemetry.Histogram
	nonfinite *telemetry.Counter
	trips     *telemetry.Counter

	step       int64
	collecting bool
	slots      []*actStat          // registration order = forward order
	index      map[string]*actStat // lookup only; never iterated
	buf        []Row               // staging for the current step, reused
}

// BeginStep opens a step window: activation taps and gradient
// collection accumulate into it until EndStep.
func (c *Collector) BeginStep(step int64) {
	if c == nil {
		return
	}
	c.step = step
	c.collecting = step%int64(c.plane.cfg.Every) == 0
	c.buf = c.buf[:0]
	for _, s := range c.slots {
		s.count, s.zeros, s.nonfinite = 0, 0, 0
		s.sum, s.sumSq = 0, 0
	}
}

// ObserveActivation implements nn.ActivationTap: one pass over the
// post-activation tensor accumulating mean/std/dead-fraction and the
// non-finite count.
func (c *Collector) ObserveActivation(layer string, act *tensor.Tensor) {
	if c == nil || !c.collecting {
		return
	}
	s := c.index[layer]
	if s == nil {
		s = &actStat{layer: layer}   //seglint:ignore hotalloc one slot per tapped layer, first step only
		c.index[layer] = s           //seglint:ignore hotalloc map insert happens once per layer; later steps hit the read above
		c.slots = append(c.slots, s) //seglint:ignore hotalloc grows once per tapped layer on the first collected step
	}
	for _, v := range act.Data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			s.nonfinite++
			continue
		}
		if v == 0 {
			s.zeros++
		}
		s.count++
		s.sum += f
		s.sumSq += f * f
	}
}

// CollectUpdate records per-parameter gradient statistics for an
// applied optimiser update: gradient L2, weight L2, and the
// update-to-weight ratio at the given learning rate. Gradients must
// be in their post-allreduce, pre-step state. Non-finite gradient
// elements are counted and excluded from the norms.
func (c *Collector) CollectUpdate(params []*nn.Param, lr float64) {
	if c == nil || !c.collecting {
		return
	}
	for _, p := range params {
		var g2, w2 float64
		bad := 0
		for _, v := range p.G.Data {
			f := float64(v)
			if math.IsNaN(f) || math.IsInf(f, 0) {
				bad++
				continue
			}
			g2 += f * f
		}
		for _, v := range p.W.Data {
			f := float64(v)
			if !math.IsNaN(f) && !math.IsInf(f, 0) {
				w2 += f * f
			}
		}
		gl2 := math.Sqrt(g2)
		wl2 := math.Sqrt(w2)
		// The ratio is undefined for zero-norm parameters (freshly
		// initialised biases and batch-norm shifts): any finite update
		// to a zero vector is "infinitely" large, which says nothing
		// about divergence. Reported as 0, sentinel skipped.
		upd := 0.0
		if wl2 > 0 {
			upd = lr * gl2 / wl2
		}
		c.buf = append(c.buf, Row{ //seglint:ignore hotalloc staging buffer reaches rows-per-step capacity on the first collected step and is reused
			Step: c.step, Rank: c.rank, Inc: c.inc, Kind: "grad", Layer: p.Name,
			GradL2: gl2, WeightL2: wl2, UpdRatio: upd, NonFinite: bad,
		})
		c.gradHist.Observe(gl2)
		c.updHist.Observe(upd)
		if bad > 0 {
			c.nonfinite.Add(float64(bad))
			c.trip(AlertNonFiniteGrad, p.Name, float64(bad), 0)
		}
		max := c.plane.cfg.UpdRatioMax
		if max > 0 && upd > max {
			c.trip(AlertUpdateRatio, p.Name, upd, max)
		}
	}
}

// EndStep closes the step window: activation slots become ledger rows
// (in forward order), activation sentinels are evaluated, and the
// staged rows land on the plane.
func (c *Collector) EndStep() {
	if c == nil || !c.collecting {
		return
	}
	for _, s := range c.slots {
		total := s.count + s.nonfinite
		if total == 0 {
			continue // layer did not fire this step (e.g. decoder off)
		}
		var mean, std, dead float64
		if s.count > 0 {
			mean = s.sum / float64(s.count)
			v := s.sumSq/float64(s.count) - mean*mean
			if v > 0 {
				std = math.Sqrt(v)
			}
			dead = float64(s.zeros) / float64(s.count)
		}
		c.buf = append(c.buf, Row{ //seglint:ignore hotalloc staging buffer reaches rows-per-step capacity on the first collected step and is reused
			Step: c.step, Rank: c.rank, Inc: c.inc, Kind: "act", Layer: s.layer,
			Mean: mean, Std: std, DeadFrac: dead, NonFinite: s.nonfinite,
		})
		c.deadHist.Observe(dead)
		if s.nonfinite > 0 {
			c.nonfinite.Add(float64(s.nonfinite))
			c.trip(AlertNonFiniteAct, s.layer, float64(s.nonfinite), 0)
		}
		max := c.plane.cfg.DeadFracMax
		if max > 0 && dead >= max {
			c.trip(AlertDeadReLU, s.layer, dead, max)
		}
	}
	c.plane.appendRows(c.buf)
}

// trip records one sentinel alert: counter, flight-recorder mark,
// alert log, and the OnAlert hook.
func (c *Collector) trip(kind, layer string, value, threshold float64) {
	c.trips.Inc()
	c.probe.Mark("HEALTH", kind)
	c.plane.addAlert(Alert{ //seglint:ignore hotalloc sentinel trips are the diverging-run path, not steady state
		Kind: kind, Layer: layer, Rank: c.rank, Inc: c.inc, Step: c.step,
		Value: value, Threshold: threshold,
		Msg: fmt.Sprintf("%s: layer %s rank %d step %d inc %d (value %.6g, threshold %.6g)", //seglint:ignore hotalloc alert formatting only runs on sentinel trips
			kind, layer, c.rank, c.step, c.inc, value, threshold),
	})
}
