package modelhealth

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"segscale/internal/nn"
	"segscale/internal/telemetry"
	"segscale/internal/tensor"
)

func param(name string, w, g []float32) *nn.Param {
	return &nn.Param{
		Name: name,
		W:    tensor.FromSlice(w, len(w)),
		G:    tensor.FromSlice(g, len(g)),
	}
}

func TestCollectUpdateStatsAndRows(t *testing.T) {
	p := New(Config{})
	c := p.Rank(0, 0, nil)
	c.BeginStep(0)
	// ‖g‖ = 5 (3-4-0), ‖w‖ = 2 (2-0-0), lr 0.1 → upd = 0.5/2 = 0.25.
	c.CollectUpdate([]*nn.Param{param("layer.a", []float32{2, 0, 0}, []float32{3, 4, 0})}, 0.1)
	c.EndStep()
	rows := p.Rows()
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	r := rows[0]
	if r.Kind != "grad" || r.Layer != "layer.a" || r.Step != 0 || r.Rank != 0 {
		t.Fatalf("row identity %+v", r)
	}
	if math.Abs(r.GradL2-5) > 1e-9 || math.Abs(r.WeightL2-2) > 1e-9 {
		t.Fatalf("norms grad=%g weight=%g, want 5, 2", r.GradL2, r.WeightL2)
	}
	if math.Abs(r.UpdRatio-0.25) > 1e-9 {
		t.Fatalf("upd_ratio %g, want 0.25", r.UpdRatio)
	}
	if len(p.Alerts()) != 0 {
		t.Fatalf("healthy update tripped alerts: %+v", p.Alerts())
	}
}

func TestActivationStats(t *testing.T) {
	p := New(Config{})
	c := p.Rank(1, 2, nil)
	c.BeginStep(7)
	// 4 finite values (one zero), mean 1.5, plus one NaN.
	act := tensor.FromSlice([]float32{0, 1, 2, 3, float32(math.NaN())}, 5)
	c.ObserveActivation("entry.relu", act)
	c.EndStep()
	rows := p.Rows()
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	r := rows[0]
	if r.Kind != "act" || r.Layer != "entry.relu" || r.Step != 7 || r.Rank != 1 || r.Inc != 2 {
		t.Fatalf("row identity %+v", r)
	}
	if math.Abs(r.Mean-1.5) > 1e-9 {
		t.Fatalf("mean %g, want 1.5", r.Mean)
	}
	wantStd := math.Sqrt(1.25) // population std of {0,1,2,3}
	if math.Abs(r.Std-wantStd) > 1e-9 {
		t.Fatalf("std %g, want %g", r.Std, wantStd)
	}
	if math.Abs(r.DeadFrac-0.25) > 1e-9 || r.NonFinite != 1 {
		t.Fatalf("dead=%g nonfinite=%d, want 0.25, 1", r.DeadFrac, r.NonFinite)
	}
	// The NaN trips the activation sentinel with full provenance.
	alerts := p.Alerts()
	if len(alerts) != 1 {
		t.Fatalf("alerts = %+v, want one nonfinite_act", alerts)
	}
	a := alerts[0]
	if a.Kind != AlertNonFiniteAct || a.Layer != "entry.relu" || a.Rank != 1 || a.Step != 7 || a.Inc != 2 {
		t.Fatalf("alert provenance %+v", a)
	}
	if !strings.Contains(a.Msg, "entry.relu") || !strings.Contains(a.Msg, "rank 1") {
		t.Fatalf("alert message %q lacks provenance", a.Msg)
	}
}

func TestSentinelThresholds(t *testing.T) {
	p := New(Config{UpdRatioMax: 0.5, DeadFracMax: 0.9})
	probe := telemetry.NewProbe("rank0", telemetry.NewStepClock())
	c := p.Rank(0, 0, probe)
	c.BeginStep(3)
	// upd = 1.0·1/1 = 1 > 0.5 → update_ratio trips.
	c.CollectUpdate([]*nn.Param{param("hot", []float32{1}, []float32{1})}, 1.0)
	// NaN gradient → nonfinite_grad trips.
	c.CollectUpdate([]*nn.Param{param("nan", []float32{1}, []float32{float32(math.NaN())})}, 0.01)
	// 19/20 zeros → dead_relu trips at 0.95 ≥ 0.9.
	dead := make([]float32, 20)
	dead[0] = 1
	c.ObserveActivation("dead.relu", tensor.FromSlice(dead, 20))
	c.EndStep()

	kinds := map[string]Alert{}
	for _, a := range p.Alerts() {
		kinds[a.Kind] = a
	}
	if len(kinds) != 3 {
		t.Fatalf("alert kinds %v, want update_ratio + nonfinite_grad + dead_relu", kinds)
	}
	if a := kinds[AlertUpdateRatio]; a.Layer != "hot" || a.Threshold != 0.5 || math.Abs(a.Value-1) > 1e-9 {
		t.Fatalf("update_ratio alert %+v", a)
	}
	if a := kinds[AlertNonFiniteGrad]; a.Layer != "nan" || a.Value != 1 {
		t.Fatalf("nonfinite_grad alert %+v", a)
	}
	if a := kinds[AlertDeadReLU]; a.Layer != "dead.relu" || math.Abs(a.Value-0.95) > 1e-9 {
		t.Fatalf("dead_relu alert %+v", a)
	}
	// Sentinel trips reach the probe's counter and the flight marks.
	if got := probe.Counter("model_health_sentinel_trips_total").Value(); got != 3 {
		t.Fatalf("sentinel_trips counter %g, want 3", got)
	}
	if got := probe.Counter("model_health_nonfinite_total").Value(); got != 1 {
		t.Fatalf("nonfinite counter %g, want 1", got)
	}
}

func TestUpdateRatioSentinelDisable(t *testing.T) {
	p := New(Config{UpdRatioMax: -1})
	c := p.Rank(0, 0, nil)
	c.BeginStep(0)
	c.CollectUpdate([]*nn.Param{param("hot", []float32{1}, []float32{100})}, 1.0)
	c.EndStep()
	if len(p.Alerts()) != 0 {
		t.Fatalf("disabled sentinel tripped: %+v", p.Alerts())
	}
}

func TestEveryCadence(t *testing.T) {
	p := New(Config{Every: 2})
	c := p.Rank(0, 0, nil)
	for step := int64(0); step < 4; step++ {
		c.BeginStep(step)
		c.CollectUpdate([]*nn.Param{param("w", []float32{1}, []float32{1})}, 0.01)
		c.EndStep()
	}
	rows := p.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (steps 0 and 2)", len(rows))
	}
	if rows[0].Step != 0 || rows[1].Step != 2 {
		t.Fatalf("collected steps %d, %d", rows[0].Step, rows[1].Step)
	}
}

func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	c.BeginStep(0)
	c.ObserveActivation("x", tensor.FromSlice([]float32{1}, 1))
	c.CollectUpdate([]*nn.Param{param("w", []float32{1}, []float32{1})}, 0.1)
	c.EndStep()
}

func TestOnAlertHookAndCap(t *testing.T) {
	var hooked []Alert
	p := New(Config{UpdRatioMax: 1e-9, OnAlert: func(a Alert) { hooked = append(hooked, a) }})
	c := p.Rank(0, 0, nil)
	// Far more trips than the cap retains.
	for step := int64(0); step < int64(maxAlerts)+100; step++ {
		c.BeginStep(step)
		c.CollectUpdate([]*nn.Param{param("w", []float32{1}, []float32{1})}, 1.0)
		c.EndStep()
	}
	if len(p.Alerts()) != maxAlerts {
		t.Fatalf("retained %d alerts, want cap %d", len(p.Alerts()), maxAlerts)
	}
	if got := p.DroppedAlerts(); got != 100 {
		t.Fatalf("dropped %d, want 100", got)
	}
	// The hook sees every trip, including dropped ones, with
	// monotonically increasing Seq that counts drops.
	if len(hooked) != maxAlerts+100 {
		t.Fatalf("hook saw %d alerts, want %d", len(hooked), maxAlerts+100)
	}
	for i, a := range hooked {
		if a.Seq != i {
			t.Fatalf("hooked alert %d has seq %d", i, a.Seq)
		}
	}
}

func TestLedgerRoundTripAndDeterminism(t *testing.T) {
	build := func() *Plane {
		p := New(Config{})
		// Interleave two ranks out of order: serialisation must sort.
		for _, rank := range []int{1, 0} {
			c := p.Rank(rank, 0, nil)
			for step := int64(0); step < 3; step++ {
				c.BeginStep(step)
				c.CollectUpdate([]*nn.Param{
					param("b.layer", []float32{1, 2}, []float32{0.1, 0.2}),
					param("a.layer", []float32{3}, []float32{0.3}),
				}, 0.05)
				c.ObserveActivation("entry.relu", tensor.FromSlice([]float32{0, 1, 2}, 3))
				c.EndStep()
			}
		}
		return p
	}
	var buf1, buf2 bytes.Buffer
	if err := build().WriteLedger(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteLedger(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("two identical planes serialised differently")
	}

	l, err := ReadLedger(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.Header.World != 2 || l.Header.LastStep != 2 {
		t.Fatalf("header %+v", l.Header)
	}
	// 3 steps × 2 ranks × (2 grad + 1 act) rows.
	if len(l.Rows) != 18 {
		t.Fatalf("rows = %d, want 18", len(l.Rows))
	}
	// Grad rows for one (step, rank) sort by layer.
	if l.Rows[0].Layer >= l.Rows[1].Layer && l.Rows[0].Kind == l.Rows[1].Kind {
		t.Fatalf("rows not layer-sorted: %q then %q", l.Rows[0].Layer, l.Rows[1].Layer)
	}
}

func TestReadLedgerRejects(t *testing.T) {
	cases := map[string]string{
		"bad schema":         `{"health_schema":99,"world":1,"rows":0,"alerts":0,"last_step":0}`,
		"row count mismatch": `{"health_schema":1,"world":1,"rows":2,"alerts":0,"last_step":0}`,
		"garbage":            `nope`,
	}
	for name, in := range cases {
		if _, err := ReadLedger(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	row := func(step int64, rank int, kind, layer string) Row {
		return Row{Step: step, Rank: rank, Kind: kind, Layer: layer}
	}
	cases := map[string]*Ledger{
		"rank outside world": {
			Header: Header{HealthSchema: 1, World: 1, Rows: 1},
			Rows:   []Row{row(0, 3, "grad", "w")},
		},
		"bad kind": {
			Header: Header{HealthSchema: 1, World: 1, Rows: 1},
			Rows:   []Row{row(0, 0, "wat", "w")},
		},
		"empty layer": {
			Header: Header{HealthSchema: 1, World: 1, Rows: 1},
			Rows:   []Row{row(0, 0, "grad", "")},
		},
		"out of order": {
			Header: Header{HealthSchema: 1, World: 1, Rows: 2},
			Rows:   []Row{row(1, 0, "grad", "w"), row(0, 0, "grad", "w")},
		},
		"dead_frac out of range": {
			Header: Header{HealthSchema: 1, World: 1, Rows: 1},
			Rows:   []Row{{Step: 0, Rank: 0, Kind: "act", Layer: "r", DeadFrac: 1.5}},
		},
		"negative norm": {
			Header: Header{HealthSchema: 1, World: 1, Rows: 1},
			Rows:   []Row{{Step: 0, Rank: 0, Kind: "grad", Layer: "w", GradL2: -1}},
		},
	}
	for name, l := range cases {
		if err := l.Validate(); err == nil {
			t.Errorf("%s: validated", name)
		}
	}
}

func TestSnapshotLatestPerLayer(t *testing.T) {
	p := New(Config{})
	c0 := p.Rank(0, 0, nil)
	c1 := p.Rank(1, 0, nil)
	for step := int64(0); step < 2; step++ {
		for _, c := range []*Collector{c0, c1} {
			c.BeginStep(step)
			c.CollectUpdate([]*nn.Param{
				param("w", []float32{1}, []float32{float32(step + 1)}),
			}, 0.1)
			c.EndStep()
		}
	}
	s := p.Snapshot()
	if s.Rows != 4 || s.LastStep != 1 {
		t.Fatalf("snapshot %+v", s)
	}
	// One layer summary (rank 0 only), carrying the latest step's value.
	if len(s.Layers) != 1 || s.Layers[0].Step != 1 {
		t.Fatalf("layers %+v", s.Layers)
	}
	if math.Abs(s.Layers[0].GradL2-2) > 1e-9 {
		t.Fatalf("latest grad_l2 %g, want 2", s.Layers[0].GradL2)
	}
}

func TestLedgerEncodesDivergedRun(t *testing.T) {
	// A fully non-finite gradient must still serialise (JSON cannot
	// encode NaN): norms stay zero, the non-finite count carries it.
	p := New(Config{})
	c := p.Rank(0, 0, nil)
	c.BeginStep(0)
	nan := float32(math.NaN())
	c.CollectUpdate([]*nn.Param{param("w", []float32{1, 1}, []float32{nan, nan})}, 0.1)
	c.EndStep()
	var buf bytes.Buffer
	if err := p.WriteLedger(&buf); err != nil {
		t.Fatal(err)
	}
	l, err := ReadLedger(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if l.Rows[0].NonFinite != 2 || l.Rows[0].GradL2 != 0 {
		t.Fatalf("diverged row %+v", l.Rows[0])
	}
}
