package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"segscale/internal/timeline"
)

// Timeline converts the merged trace into a timeline.Recorder, the
// bridge to the existing Chrome trace tooling: WriteChromeTrace,
// ReadChromeTrace, trace-stats, and chrome://tracing all consume the
// result unchanged.
func (c *Collector) Timeline() *timeline.Recorder {
	rec := timeline.New()
	for _, s := range c.Spans() {
		rec.AddEdge(s.Lane, s.Phase, s.Name, s.Edge, s.Start, s.End)
	}
	return rec
}

// WriteChromeTrace emits the merged trace as Chrome trace-event JSON
// via internal/timeline's writer.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	return c.Timeline().WriteChromeTrace(w)
}

// WritePrometheus renders every gathered metric in Prometheus text
// exposition format (version 0.0.4). Counters and gauges get one
// sample per lane plus, for counters, an unlabelled cross-lane sum;
// histograms are emitted merged across lanes in the standard
// _bucket/_sum/_count form. Times keep the clock's native unit
// (virtual seconds or step-clock ops), as the metric name's suffix
// states.
func (c *Collector) WritePrometheus(w io.Writer) error {
	for _, m := range c.Gather() {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, promType(m.Kind)); err != nil {
			return err
		}
		switch m.Kind {
		case "histogram":
			if err := writePromHistogram(w, m.Name, m.Hist); err != nil {
				return err
			}
			if err := writePromQuantiles(w, m.Name, m.Hist); err != nil {
				return err
			}
		default:
			for _, lane := range sortedLanes(m.PerLane) {
				if _, err := fmt.Fprintf(w, "%s{lane=%q} %s\n", m.Name, lane, promFloat(m.PerLane[lane])); err != nil {
					return err
				}
			}
			if m.Kind == "counter" {
				if _, err := fmt.Fprintf(w, "%s %s\n", m.Name, promFloat(m.Value)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func promType(kind string) string {
	if kind == "counter" {
		return "counter"
	}
	if kind == "histogram" {
		return "histogram"
	}
	return "gauge"
}

func writePromHistogram(w io.Writer, name string, h *HistSnapshot) error {
	if h == nil {
		return nil
	}
	cum := uint64(0)
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(b), cum); err != nil {
			return err
		}
	}
	cum += h.Counts[len(h.Counts)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Total)
	return err
}

// promQuantiles are the pre-rendered quantile gauges every exported
// histogram gets alongside its raw buckets — the at-a-glance numbers a
// scrape without a PromQL engine (obs_smoke.sh, curl) needs.
var promQuantiles = []struct {
	tag string
	q   float64
}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}}

// writePromQuantiles renders a histogram's estimated quantiles as
// derived gauges, the quantile tag spliced in before the unit suffix:
// perfsim_step_seconds -> perfsim_step_p99_seconds.
func writePromQuantiles(w io.Writer, name string, h *HistSnapshot) error {
	for _, pq := range promQuantiles {
		v := h.Quantile(pq.q)
		if math.IsNaN(v) {
			continue // empty histogram, or only a +Inf bucket
		}
		qn := quantileName(name, pq.tag)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", qn, qn, promFloat(v)); err != nil {
			return err
		}
	}
	return nil
}

// quantileName splices the quantile tag in before the metric's unit
// suffix, keeping the derived name convention-clean.
func quantileName(name, tag string) string {
	for _, s := range MetricSuffixes {
		if strings.HasSuffix(name, s) {
			return name[:len(name)-len(s)] + "_" + tag + s
		}
	}
	return name + "_" + tag
}

func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedLanes(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// PhaseSummary aggregates the merged trace per phase.
type PhaseSummary struct {
	Phase string  `json:"phase"`
	Count int     `json:"count"`
	Total float64 `json:"total"` // summed duration, clock units
}

// Summary is the machine-readable run digest WriteJSON emits.
type Summary struct {
	Lanes   []string         `json:"lanes"`
	Spans   int              `json:"spans"`
	Phases  []PhaseSummary   `json:"phases"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// Summarize builds the JSON-facing digest of the collected telemetry.
func (c *Collector) Summarize() Summary {
	spans := c.Spans()
	laneSet := map[string]bool{}
	phase := map[string]*PhaseSummary{}
	var phases []string
	for _, s := range spans {
		laneSet[s.Lane] = true
		ps, ok := phase[s.Phase]
		if !ok {
			ps = &PhaseSummary{Phase: s.Phase}
			phase[s.Phase] = ps
			phases = append(phases, s.Phase)
		}
		ps.Count++
		ps.Total += s.End - s.Start
	}
	sort.Strings(phases)
	sum := Summary{Spans: len(spans), Metrics: c.Gather()}
	for l := range laneSet {
		sum.Lanes = append(sum.Lanes, l)
	}
	sort.Strings(sum.Lanes)
	for _, p := range phases {
		sum.Phases = append(sum.Phases, *phase[p])
	}
	return sum
}

// WriteJSON emits the Summary as indented JSON.
func (c *Collector) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c.Summarize())
}
