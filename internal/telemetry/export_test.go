package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"segscale/internal/timeline"
)

func exampleCollector() *Collector {
	col := NewCollector()
	for _, lane := range []string{"rank0", "rank1"} {
		p := col.NewProbe(lane, ClockFunc(func() float64 { return 0 }))
		p.Tracer().Add(lane, timeline.PhaseForward, "fwd", 0, 2)
		p.Tracer().Add(lane, timeline.PhaseAllreduce, "buf0", 2, 5)
		p.Counter("transport_sent_bytes").Add(1024)
		p.Counter("train_steps_total").Inc()
		p.Gauge("horovod_fusion_fill_ratio").Set(0.5)
		p.Histogram("collective_allreduce_ops", []float64{1, 10}).Observe(3)
	}
	return col
}

func TestChromeTraceRoundTrip(t *testing.T) {
	col := exampleCollector()
	var buf bytes.Buffer
	if err := col.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	rec, err := timeline.ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Events) != 4 {
		t.Fatalf("round-tripped %d events, want 4", len(rec.Events))
	}
	br := rec.Breakdown()
	if br[timeline.PhaseForward] != 4 || br[timeline.PhaseAllreduce] != 6 {
		t.Fatalf("breakdown %v", br)
	}
}

func TestWritePrometheus(t *testing.T) {
	col := exampleCollector()
	var buf bytes.Buffer
	if err := col.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE transport_sent_bytes counter",
		`transport_sent_bytes{lane="rank0"} 1024`,
		`transport_sent_bytes{lane="rank1"} 1024`,
		"transport_sent_bytes 2048",
		"# TYPE horovod_fusion_fill_ratio gauge",
		`horovod_fusion_fill_ratio{lane="rank0"} 0.5`,
		"# TYPE collective_allreduce_ops histogram",
		`collective_allreduce_ops_bucket{le="10"} 2`,
		`collective_allreduce_ops_bucket{le="+Inf"} 2`,
		"collective_allreduce_ops_sum 6",
		"collective_allreduce_ops_count 2",
		"# TYPE collective_allreduce_p50_ops gauge",
		"collective_allreduce_p50_ops 5.5",
		"collective_allreduce_p95_ops 9.54", // 1 + 9*0.95, modulo float dust
		"collective_allreduce_p99_ops 9.91",
		"train_steps_total 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n---\n%s", want, out)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	col := exampleCollector()
	var buf bytes.Buffer
	if err := col.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var sum Summary
	if err := json.Unmarshal(buf.Bytes(), &sum); err != nil {
		t.Fatalf("summary is not valid JSON: %v", err)
	}
	if sum.Spans != 4 || len(sum.Lanes) != 2 || len(sum.Metrics) != 4 {
		t.Fatalf("summary %+v", sum)
	}
}

func TestEmptyCollectorExports(t *testing.T) {
	col := NewCollector()
	var buf bytes.Buffer
	if err := col.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := col.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty collector wrote %q", buf.String())
	}
	buf.Reset()
	if err := col.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}
