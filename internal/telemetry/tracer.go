package telemetry

import "sync"

// SpanRecord is one finished traced interval. Lane is the executor
// ("rank0", "coordinator"), Phase the activity vocabulary entry
// (timeline.PhaseAllreduce, ...), Name free-form detail. Edge, when
// non-empty, is the message-edge attribute ("src>dst#seq.inc", see
// timeline.Edge) that pairs a send span with its matching recv span
// across lanes — the raw material of the happens-before DAG.
type SpanRecord struct {
	Lane  string
	Phase string
	Name  string
	Start float64
	End   float64
	Edge  string
}

// Tracer records spans against an injected deterministic clock. A nil
// Tracer is a valid no-op. A Tracer is safe for concurrent use; for
// deterministic traces give each rank its own Tracer (the Collector
// merges them).
type Tracer struct {
	clock Clock

	mu     sync.Mutex
	spans  []SpanRecord
	flight *FlightRecorder
}

// NewTracer returns a tracer reading timestamps from clock. A nil
// clock reads as zero: spans still record (pairing metadata like edge
// IDs survives) but carry no duration — callers that only want
// counters may pass nil without arming a time source.
func NewTracer(clock Clock) *Tracer {
	if clock == nil {
		clock = ClockFunc(func() float64 { return 0 })
	}
	return &Tracer{clock: clock}
}

// SetFlight mirrors every subsequently recorded span into the flight
// recorder's ring (nil detaches). Nil-safe.
func (t *Tracer) SetFlight(f *FlightRecorder) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.flight = f
	t.mu.Unlock()
}

// Span is an in-flight interval returned by Start. The zero Span (and
// any Span from a nil Tracer) is a no-op.
type Span struct {
	t     *Tracer
	lane  string
	phase string
	name  string
	edge  string
	start float64
}

// Start opens a span on the given lane. Nil-safe: a nil Tracer
// returns a no-op Span.
func (t *Tracer) Start(lane, phase, name string) Span {
	return t.StartEdge(lane, phase, name, "")
}

// StartEdge opens a span carrying a message-edge attribute — the
// transport's send/recv instrumentation. Nil-safe.
func (t *Tracer) StartEdge(lane, phase, name, edge string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, lane: lane, phase: phase, name: name, edge: edge, start: t.clock.Now()}
}

// SetEdge attaches a message-edge attribute to an in-flight span. The
// receive path learns its edge only once a message is taken, after the
// span has already opened. No-op on a no-op span.
func (s *Span) SetEdge(edge string) {
	if s.t != nil {
		s.edge = edge
	}
}

// End closes the span, records it, and returns its duration in the
// clock's units (useful for feeding duration histograms). Calling End
// on a no-op span does nothing and returns zero.
func (s Span) End() float64 {
	if s.t == nil {
		return 0
	}
	end := s.t.clock.Now()
	if end < s.start {
		end = s.start // a non-monotonic injected clock must not corrupt the trace
	}
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, SpanRecord{ //seglint:ignore hotalloc span log grows by design when tracing is on; the nil probe (deterministic default) never reaches it
		Lane: s.lane, Phase: s.phase, Name: s.name, Start: s.start, End: end, Edge: s.edge,
	})
	flight := s.t.flight
	s.t.mu.Unlock()
	flight.Record(FlightEvent{Lane: s.lane, Phase: s.phase, Name: s.name, Start: s.start, End: end, Edge: s.edge})
	return end - s.start
}

// Add records an already-measured interval — the path perfsim uses,
// where start/end are explicit virtual times computed by the model
// rather than clock reads. Intervals with end < start are clamped to
// zero duration. Nil-safe.
func (t *Tracer) Add(lane, phase, name string, start, end float64) {
	t.AddEdge(lane, phase, name, "", start, end)
}

// AddEdge is Add with a message-edge attribute. Nil-safe.
func (t *Tracer) AddEdge(lane, phase, name, edge string, start, end float64) {
	if t == nil {
		return
	}
	if end < start {
		end = start
	}
	t.mu.Lock()
	t.spans = append(t.spans, SpanRecord{Lane: lane, Phase: phase, Name: name, Start: start, End: end, Edge: edge}) //seglint:ignore hotalloc span log grows by design when tracing is on; the nil tracer (deterministic default) never reaches it
	flight := t.flight
	t.mu.Unlock()
	flight.Record(FlightEvent{Lane: lane, Phase: phase, Name: name, Start: start, End: end, Edge: edge})
}

// Spans returns a copy of the recorded spans.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}
