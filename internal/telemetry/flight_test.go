package telemetry

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"segscale/internal/timeline"
)

func TestFlightRecorderWraparound(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Record(FlightEvent{Lane: "r0", Phase: "P", Name: fmt.Sprintf("e%d", i),
			Start: float64(i), End: float64(i) + 0.5})
	}
	if got := f.Total(); got != 10 {
		t.Fatalf("Total() = %d, want 10", got)
	}
	if got := f.Len(); got != 4 {
		t.Fatalf("Len() = %d, want 4", got)
	}
	snap := f.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot() has %d events, want 4", len(snap))
	}
	for i, ev := range snap {
		want := fmt.Sprintf("e%d", 6+i) // only the newest 4 survive, oldest first
		if ev.Name != want {
			t.Errorf("snap[%d].Name = %q, want %q", i, ev.Name, want)
		}
	}
}

func TestFlightRecorderPartialFill(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record(FlightEvent{Name: "a", Start: 1, End: 2})
	f.Record(FlightEvent{Name: "b", Start: 3, End: 2}) // end<start clamps
	snap := f.Snapshot()
	if len(snap) != 2 || snap[0].Name != "a" || snap[1].Name != "b" {
		t.Fatalf("Snapshot() = %+v, want [a b]", snap)
	}
	if snap[1].End != snap[1].Start {
		t.Fatalf("end<start not clamped: %+v", snap[1])
	}
}

func TestFlightRecorderNilIsNoOp(t *testing.T) {
	var f *FlightRecorder
	f.Record(FlightEvent{Name: "x"})
	if f.Snapshot() != nil || f.Len() != 0 || f.Cap() != 0 || f.Total() != 0 {
		t.Fatal("nil FlightRecorder is not a no-op")
	}
}

// TestFlightThroughCollector checks the full plumbing: once
// EnableFlight is on, spans ended and marks recorded through any
// probe — attached before or after — appear in the ring, and the
// dump parses as a Chrome trace.
func TestFlightThroughCollector(t *testing.T) {
	col := NewCollector()
	before := col.NewProbe("rank0", NewStepClock())
	f := col.EnableFlight(16)
	if col.Flight() != f {
		t.Fatal("Flight() does not return the enabled recorder")
	}
	if again := col.EnableFlight(99); again != f {
		t.Fatal("EnableFlight is not idempotent")
	}
	after := col.NewProbe("rank1", NewStepClock())

	before.Span(timeline.PhaseStep, "s0").End()
	after.Span(timeline.PhaseStep, "s1").End()
	after.Mark("RECOVERY", "restart")

	snap := f.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("flight ring has %d events, want 3: %+v", len(snap), snap)
	}
	if snap[2].Phase != "RECOVERY" || snap[2].Start != snap[2].End {
		t.Fatalf("Mark not recorded as instantaneous event: %+v", snap[2])
	}

	var buf bytes.Buffer
	if err := f.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	rec, err := timeline.ReadChromeTrace(&buf)
	if err != nil {
		t.Fatalf("flight dump is not a readable Chrome trace: %v", err)
	}
	if len(rec.Events) != 3 {
		t.Fatalf("round-tripped trace has %d events, want 3", len(rec.Events))
	}
}

// TestFlightRecorderConcurrent hammers one ring from many writer
// goroutines with concurrent snapshots — the scenario the HTTP
// /debug/flight endpoint creates during a live run. Run under -race
// (the CI race matrix includes this package).
func TestFlightRecorderConcurrent(t *testing.T) {
	const writers, perWriter = 8, 500
	f := NewFlightRecorder(64)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lane := fmt.Sprintf("rank%d", w)
			for i := 0; i < perWriter; i++ {
				f.Record(FlightEvent{Lane: lane, Phase: "P", Name: "e",
					Start: float64(i), End: float64(i + 1)})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			if got := len(f.Snapshot()); got > f.Cap() {
				t.Errorf("snapshot longer than capacity: %d > %d", got, f.Cap())
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if got := f.Total(); got != writers*perWriter {
		t.Fatalf("Total() = %d, want %d", got, writers*perWriter)
	}
	if got := f.Len(); got != f.Cap() {
		t.Fatalf("Len() = %d, want full ring %d", got, f.Cap())
	}
}
