package telemetry

import (
	"math"
	"sort"
	"sync"
)

// Collector gathers per-rank probes and merges their metrics and
// spans for export — the telemetry analogue of merging per-rank
// confusion matrices into one global mIOU. A nil Collector is a
// valid no-op whose NewProbe returns a nil (no-op) probe, so a single
// `cfg.Telemetry` field drives the whole instrumented path.
type Collector struct {
	mu     sync.Mutex
	probes []*Probe
	flight *FlightRecorder
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// NewProbe creates a probe on the given lane and clock and attaches
// it. Nil-safe: a nil collector returns a nil probe.
func (c *Collector) NewProbe(lane string, clock Clock) *Probe {
	if c == nil {
		return nil
	}
	p := NewProbe(lane, clock)
	c.Attach(p)
	return p
}

// Attach registers an externally built probe (nil probes ignored).
// If the collector has a flight recorder enabled, the probe's tracer
// starts mirroring into it.
func (c *Collector) Attach(p *Probe) {
	if c == nil || p == nil {
		return
	}
	c.mu.Lock()
	c.probes = append(c.probes, p)
	flight := c.flight
	c.mu.Unlock()
	if flight != nil {
		p.Tracer().SetFlight(flight)
	}
}

// EnableFlight installs a flight recorder keeping the last capacity
// events (DefaultFlightCapacity if capacity <= 0) and attaches it to
// every current and future probe. Idempotent: a second call returns
// the existing recorder unchanged. Nil-safe: a nil collector returns
// a nil (no-op) recorder.
func (c *Collector) EnableFlight(capacity int) *FlightRecorder {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	if c.flight == nil {
		c.flight = NewFlightRecorder(capacity)
	}
	flight := c.flight
	probes := append([]*Probe(nil), c.probes...)
	c.mu.Unlock()
	for _, p := range probes {
		p.Tracer().SetFlight(flight)
	}
	return flight
}

// Flight returns the collector's flight recorder (nil when
// EnableFlight was never called).
func (c *Collector) Flight() *FlightRecorder {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flight
}

// Probes returns the attached probes.
func (c *Collector) Probes() []*Probe {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Probe(nil), c.probes...)
}

// Spans returns every attached probe's spans, ordered by start time
// (ties by lane, then insertion) — the merged trace.
func (c *Collector) Spans() []SpanRecord {
	var out []SpanRecord
	for _, p := range c.Probes() {
		out = append(out, p.Tracer().Spans()...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Lane < out[j].Lane
	})
	return out
}

// HistSnapshot is one histogram's merged state.
type HistSnapshot struct {
	// Bounds are bucket upper bounds; Counts has len(Bounds)+1
	// entries, the last being the +Inf bucket.
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Sum    float64   `json:"sum"`
	Total  uint64    `json:"total"`
}

// Quantile estimates the q-quantile (q in [0, 1]) from the bucket
// counts by linear interpolation within the owning bucket — see
// Histogram.Quantile for the edge cases.
func (h *HistSnapshot) Quantile(q float64) float64 {
	if h == nil || h.Total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(h.Total)
	var cum uint64
	for i, c := range h.Counts {
		prev := cum
		cum += c
		if c == 0 || float64(cum) < rank {
			continue
		}
		if i == len(h.Bounds) {
			// +Inf bucket: the buckets cannot resolve past the last
			// finite bound.
			if len(h.Bounds) == 0 {
				return math.NaN()
			}
			return h.Bounds[len(h.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.Bounds[i-1]
		}
		return lo + (h.Bounds[i]-lo)*(rank-float64(prev))/float64(c)
	}
	return math.NaN() // unreachable: cum == Total >= rank by the end
}

// merge adds o bucket-wise; histograms with different bounds cannot
// merge and o is dropped with ok=false.
func (h *HistSnapshot) merge(o *HistSnapshot) bool {
	if len(h.Bounds) != len(o.Bounds) {
		return false
	}
	for i := range h.Bounds {
		if h.Bounds[i] != o.Bounds[i] {
			return false
		}
	}
	for i := range h.Counts {
		h.Counts[i] += o.Counts[i]
	}
	h.Sum += o.Sum
	h.Total += o.Total
	return true
}

// MetricSnapshot is one metric merged across lanes.
type MetricSnapshot struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "counter", "gauge", "histogram"
	// PerLane holds each lane's value (counter total / last gauge
	// value / histogram observation count).
	PerLane map[string]float64 `json:"per_lane"`
	// Value is the cross-lane aggregate: counters sum, gauges take
	// the maximum (the straggler-facing choice for depths and fill
	// levels), histograms report the merged observation count.
	Value float64 `json:"value"`
	// Hist carries the merged buckets for histograms (nil otherwise).
	Hist *HistSnapshot `json:"hist,omitempty"`
}

// Gather merges every attached probe's registry into one snapshot
// per metric name, sorted by name.
func (c *Collector) Gather() []MetricSnapshot {
	byName := map[string]*MetricSnapshot{}
	var names []string
	for _, p := range c.Probes() {
		reg := p.Metrics()
		for _, rg := range reg.names() {
			snap, ok := byName[rg.name]
			if !ok {
				snap = &MetricSnapshot{Name: rg.name, PerLane: map[string]float64{}}
				byName[rg.name] = snap
				names = append(names, rg.name)
			}
			switch rg.kind {
			case kindCounter:
				snap.Kind = "counter"
				v := reg.Counter(rg.name).Value()
				snap.PerLane[reg.Lane()] += v
				snap.Value += v
			case kindGauge:
				snap.Kind = "gauge"
				v := reg.Gauge(rg.name).Value()
				snap.PerLane[reg.Lane()] = v
				if v > snap.Value {
					snap.Value = v
				}
			case kindHistogram:
				snap.Kind = "histogram"
				h := reg.histogram(rg.name)
				counts, sum, total := h.Snapshot()
				hs := &HistSnapshot{Bounds: h.Bounds(), Counts: counts, Sum: sum, Total: total}
				snap.PerLane[reg.Lane()] += float64(total)
				if snap.Hist == nil {
					snap.Hist = hs
				} else {
					snap.Hist.merge(hs)
				}
				snap.Value = float64(snap.Hist.Total)
			}
		}
	}
	sort.Strings(names)
	out := make([]MetricSnapshot, 0, len(names))
	for _, n := range names {
		out = append(out, *byName[n])
	}
	return out
}
