package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentPerRankWrites drives the exact concurrency shape the
// real training path produces — one goroutine per rank writing spans
// and metrics into probes attached to a shared collector, while the
// collector is read — and exists primarily as the -race target for
// this package.
func TestConcurrentPerRankWrites(t *testing.T) {
	const ranks = 8
	const steps = 50
	col := NewCollector()
	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			p := col.NewProbe(fmt.Sprintf("rank%d", rank), NewStepClock())
			for s := 0; s < steps; s++ {
				sp := p.Span("FORWARD", "step")
				p.Counter("train_steps_total").Inc()
				p.Counter("transport_sent_bytes").Add(float64(4 * s))
				p.Gauge("des_queue_depth_events").Set(float64(s))
				p.Histogram("train_step_ops", ExpBuckets(1, 2, 8)).Observe(float64(s))
				sp.End()
			}
		}(r)
	}
	// Concurrent reads while ranks write.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			col.Gather()
			col.Spans()
		}
	}()
	wg.Wait()
	<-done

	snaps := col.Gather()
	byName := map[string]MetricSnapshot{}
	for _, s := range snaps {
		byName[s.Name] = s
	}
	if got := byName["train_steps_total"].Value; got != ranks*steps {
		t.Fatalf("train_steps_total = %g, want %d", got, ranks*steps)
	}
	if got := byName["train_step_ops"].Hist.Total; got != ranks*steps {
		t.Fatalf("histogram total = %d, want %d", got, ranks*steps)
	}
	if got := len(col.Spans()); got != ranks*steps {
		t.Fatalf("%d spans, want %d", got, ranks*steps)
	}
}

// TestSharedInstrumentConcurrency hammers a single counter, gauge,
// and histogram from many goroutines — the degenerate sharing case.
func TestSharedInstrumentConcurrency(t *testing.T) {
	r := NewRegistry("shared")
	c := r.Counter("hits_total")
	g := r.Gauge("level_ratio")
	h := r.Histogram("obs_ops", []float64{10, 100})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 16000 {
		t.Fatalf("counter = %g, want 16000", c.Value())
	}
	if _, _, total := h.Snapshot(); total != 16000 {
		t.Fatalf("histogram total = %d", total)
	}
}
