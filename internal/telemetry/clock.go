// Package telemetry is segscale's unified instrumentation layer: a
// span-based tracer and a metrics registry shared by the simulated
// stack (perfsim/des, on virtual time) and the real training stack
// (train/horovod/collective/transport, on deterministic step-counter
// time), merged per rank at a Collector and exported as Chrome
// trace-event JSON (internal/timeline's format, so chrome://tracing
// and trace-stats consume it unchanged), Prometheus text exposition,
// and a machine-readable JSON summary.
//
// Horovod ships HOROVOD_TIMELINE because distributed-training tuning
// is evidence-driven — "you can't tune what you can't see" — and the
// paper's whole methodology is reading time breakdowns off such
// traces. This package gives every layer of segscale the same
// affordance behind one API.
//
// Everything is nil-safe: a nil *Probe, *Tracer, *Registry, *Counter,
// *Gauge, or *Histogram is a no-op, so uninstrumented call sites pay
// exactly one branch. No wall clock is ever read (the nowallclock
// seglint pass covers this package); time comes from an injected
// Clock.
package telemetry

import "sync/atomic"

// Clock supplies timestamps for spans. Implementations must be
// deterministic: the DES virtual clock for simulation, a monotonic
// operation counter for the real training path. Units are whatever
// the clock defines (virtual seconds, operation ticks); exporters
// carry them through unscaled.
type Clock interface {
	// Now returns the current time. Implementations may advance
	// their notion of time as a side effect (StepClock does), so two
	// consecutive calls need not return equal values.
	Now() float64
}

// ClockFunc adapts a plain function — typically a closure over
// des.Sim.Now — into a Clock.
type ClockFunc func() float64

// Now implements Clock.
func (f ClockFunc) Now() float64 { return f() } //seglint:ignore hotalloc clock indirection: the training path's StepClock is an atomic counter; ClockFunc adapters are simulator-side

// StepClock is a monotonic operation counter: every Now call
// atomically increments the counter and returns the new value. It
// gives the real training path — which must not consult the wall
// clock if results are to stay deterministic — a total order over
// instrumentation events. Durations measured against a StepClock are
// operation counts ("ops"), not seconds; metric names must say so
// (train_step_ops, not train_step_seconds).
//
// A StepClock is safe for concurrent use, but per-rank probes should
// own per-rank clocks so event ordering within a lane never depends
// on goroutine interleaving.
type StepClock struct {
	ticks atomic.Uint64
}

// NewStepClock returns a counter clock starting at zero.
func NewStepClock() *StepClock { return &StepClock{} }

// Now advances the counter by one tick and returns it.
func (c *StepClock) Now() float64 { return float64(c.ticks.Add(1)) }
