package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// MetricSuffixes are the unit suffixes a metric name must end with —
// the naming convention docs/OBSERVABILITY.md documents and the
// metricname seglint pass enforces at registration call sites:
// snake_case, ending in the quantity's unit (_seconds for virtual
// seconds, _ops for step-clock ticks, _bytes, _events) or in the
// dimensionless markers _total (monotonic counts), _ratio, and _norm
// (vector norms, e.g. the health plane's per-layer gradient L2).
var MetricSuffixes = []string{"_seconds", "_bytes", "_total", "_ratio", "_ops", "_events", "_norm"}

// ValidMetricName reports whether name follows the convention:
// lower-case snake_case with a recognised unit suffix.
func ValidMetricName(name string) bool {
	if name == "" {
		return false
	}
	prev := byte('_') // forbids a leading '_' or digit-start via the rules below
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		case c == '_':
			if prev == '_' { // no leading or doubled underscores
				return false
			}
		default:
			return false
		}
		prev = c
	}
	for _, s := range MetricSuffixes {
		if len(name) > len(s) && name[len(name)-len(s):] == s {
			return true
		}
	}
	return false
}

// Counter is a monotonically increasing value. All methods are
// nil-safe no-ops and safe for concurrent use.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v (negative or NaN v is ignored —
// counters only go up).
func (c *Counter) Add(v float64) {
	if c == nil || !(v > 0) {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current total.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a point-in-time value (queue depth, fill ratio). All
// methods are nil-safe no-ops and safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
	set  atomic.Bool
}

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
	g.set.Store(true)
}

// Value returns the last Set value (zero before any Set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets defined by
// ascending upper bounds; observations beyond the last bound land in
// an implicit +Inf bucket. All methods are nil-safe no-ops and safe
// for concurrent use.
type Histogram struct {
	bounds []float64

	mu     sync.Mutex
	counts []uint64
	sum    float64
	total  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return append([]float64(nil), h.bounds...)
}

// Snapshot returns cumulative per-bucket counts (ending with the +Inf
// bucket), the sum of observations, and their count.
func (h *Histogram) Snapshot() (counts []uint64, sum float64, total uint64) {
	if h == nil {
		return nil, 0, 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64(nil), h.counts...), h.sum, h.total
}

// Quantile returns the q-quantile (q in [0, 1]) of the recorded
// distribution, estimated by linear interpolation within the owning
// bucket — the same estimate PromQL's histogram_quantile computes from
// the exported buckets. NaN for an empty histogram or when the
// quantile lands in the +Inf bucket of a bound-less histogram; the
// last finite bound when it lands in the +Inf bucket otherwise (the
// estimate cannot exceed what the buckets resolve). Nil-safe.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	counts, _, total := h.Snapshot()
	hs := HistSnapshot{Bounds: h.Bounds(), Counts: counts, Total: total}
	return hs.Quantile(q)
}

// ExpBuckets returns n exponential bucket bounds starting at lo with
// the given growth factor — the shape latency and size distributions
// want.
func ExpBuckets(lo, factor float64, n int) []float64 {
	if n <= 0 || lo <= 0 || factor <= 1 {
		return nil
	}
	out := make([]float64, n)
	v := lo
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// metricKind tags registry entries for exporters.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// Registry owns one instrumentation domain's metrics — one instance
// per rank, merged by the Collector the same way per-rank confusion
// matrices merge into a global mIOU. A nil Registry is a valid no-op.
type Registry struct {
	// Lane labels this registry's series in merged exports ("rank0",
	// "sim"). Set once at construction.
	lane string

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	order    []registered
}

type registered struct {
	name string
	kind metricKind
}

// NewRegistry returns an empty registry labelled with lane.
func NewRegistry(lane string) *Registry {
	return &Registry{
		lane:     lane,
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Lane returns the registry's lane label.
func (r *Registry) Lane() string {
	if r == nil {
		return ""
	}
	return r.lane
}

// checkName panics on a name that breaks the metric naming
// convention: a bad name is a programmer error at an instrumentation
// site, caught statically by the metricname seglint pass and
// dynamically here so dynamic names cannot dodge the convention.
func checkName(name string) {
	if !ValidMetricName(name) {
		panic(fmt.Sprintf("telemetry: metric name %q violates the naming convention (snake_case with a unit suffix %v)", name, MetricSuffixes))
	}
}

// Counter returns the named counter, creating it on first use.
// Nil-safe: a nil Registry returns a nil (no-op) Counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{} //seglint:ignore hotalloc first use of a metric name registers it; steady-state calls return the cached instance
		r.counters[name] = c
		r.order = append(r.order, registered{name, kindCounter}) //seglint:ignore hotalloc registration-order log grows once per metric name
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{} //seglint:ignore hotalloc first use of a metric name registers it; steady-state calls return the cached instance
		r.gauges[name] = g
		r.order = append(r.order, registered{name, kindGauge}) //seglint:ignore hotalloc registration-order log grows once per metric name
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use (later calls reuse the first buckets).
// Nil-safe.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		bounds := append([]float64(nil), buckets...)                          //seglint:ignore hotalloc first use of a metric name registers it; steady-state calls return the cached instance
		sort.Float64s(bounds)                                                 //seglint:ignore hotalloc first-use registration only
		h = &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)} //seglint:ignore hotalloc first-use registration only
		r.hists[name] = h
		r.order = append(r.order, registered{name, kindHistogram}) //seglint:ignore hotalloc registration-order log grows once per metric name
	}
	return h
}

// histogram returns the named histogram if registered, else nil.
func (r *Registry) histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hists[name]
}

// names returns the registered metric names in first-registration
// order, per kind.
func (r *Registry) names() []registered {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]registered(nil), r.order...)
}
