package telemetry

// Probe bundles one rank's tracer and metrics registry under a lane
// label — the handle instrumented packages accept. A nil *Probe is
// the uninstrumented default: every method is a no-op costing one
// branch, so hot paths carry instrumentation unconditionally.
type Probe struct {
	lane    string
	tracer  *Tracer
	metrics *Registry
}

// NewProbe creates a probe whose spans read the given clock and whose
// metrics land in a fresh registry labelled lane.
func NewProbe(lane string, clock Clock) *Probe {
	return &Probe{
		lane:    lane,
		tracer:  NewTracer(clock),
		metrics: NewRegistry(lane),
	}
}

// Lane returns the probe's lane label ("" for nil).
func (p *Probe) Lane() string {
	if p == nil {
		return ""
	}
	return p.lane
}

// Tracer returns the probe's tracer (nil for a nil probe).
func (p *Probe) Tracer() *Tracer {
	if p == nil {
		return nil
	}
	return p.tracer
}

// Metrics returns the probe's registry (nil for a nil probe).
func (p *Probe) Metrics() *Registry {
	if p == nil {
		return nil
	}
	return p.metrics
}

// Span opens a span on this probe's lane. Nil-safe.
func (p *Probe) Span(phase, name string) Span {
	if p == nil {
		return Span{}
	}
	return p.tracer.Start(p.lane, phase, name)
}

// EdgeSpan opens a span carrying a message-edge attribute on this
// probe's lane — the transport stamps "src>dst#seq.inc" edges onto its
// send and recv spans through it. Nil-safe.
func (p *Probe) EdgeSpan(phase, name, edge string) Span {
	if p == nil {
		return Span{}
	}
	return p.tracer.StartEdge(p.lane, phase, name, edge)
}

// Mark records an instantaneous event (a zero-duration span at the
// current clock reading) — the flight-recorder representation of
// discrete occurrences like counter bumps, recoveries, or alerts.
// Counters themselves are too hot to mirror into the ring one
// increment at a time; call sites that want an increment visible in a
// flight dump pair the Inc with a Mark. Nil-safe.
func (p *Probe) Mark(phase, name string) {
	if p == nil {
		return
	}
	now := p.tracer.clock.Now()
	p.tracer.Add(p.lane, phase, name, now, now)
}

// Counter returns the named counter from the probe's registry.
// Nil-safe: a nil probe yields a nil (no-op) counter.
func (p *Probe) Counter(name string) *Counter {
	if p == nil {
		return nil
	}
	return p.metrics.Counter(name)
}

// Gauge returns the named gauge. Nil-safe.
func (p *Probe) Gauge(name string) *Gauge {
	if p == nil {
		return nil
	}
	return p.metrics.Gauge(name)
}

// Histogram returns the named histogram. Nil-safe.
func (p *Probe) Histogram(name string, buckets []float64) *Histogram {
	if p == nil {
		return nil
	}
	return p.metrics.Histogram(name, buckets)
}
