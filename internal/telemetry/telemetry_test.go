package telemetry

import (
	"math"
	"strings"
	"testing"
)

func TestStepClockMonotonic(t *testing.T) {
	c := NewStepClock()
	prev := c.Now()
	for i := 0; i < 100; i++ {
		v := c.Now()
		if v <= prev {
			t.Fatalf("step clock went %g -> %g", prev, v)
		}
		prev = v
	}
}

func TestValidMetricName(t *testing.T) {
	good := []string{
		"transport_sent_bytes", "train_steps_total", "des_events_total",
		"perfsim_allreduce_seconds", "horovod_fusion_fill_ratio",
		"train_step_ops", "des_queue_depth_events",
	}
	for _, n := range good {
		if !ValidMetricName(n) {
			t.Errorf("ValidMetricName(%q) = false, want true", n)
		}
	}
	bad := []string{
		"", "_total", "Total_bytes", "sentBytes", "sent-bytes",
		"sent bytes", "sent__bytes", "_leading_total", "9lives_total",
		"latency", "latency_us", "bytes", "total",
	}
	for _, n := range bad {
		if ValidMetricName(n) {
			t.Errorf("ValidMetricName(%q) = true, want false", n)
		}
	}
}

func TestRegistryRejectsBadName(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad metric name accepted")
		}
	}()
	NewRegistry("r").Counter("camelCaseBytes")
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry("rank0")
	c := r.Counter("xfer_bytes")
	c.Add(10)
	c.Add(-5) // ignored: counters only go up
	c.Inc()
	if got := c.Value(); got != 11 {
		t.Fatalf("counter = %g, want 11", got)
	}
	if r.Counter("xfer_bytes") != c {
		t.Fatal("repeat registration returned a different counter")
	}

	g := r.Gauge("queue_depth_events")
	g.Set(7)
	g.Set(3)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %g, want 3", got)
	}

	h := r.Histogram("lat_seconds", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500, 10} {
		h.Observe(v)
	}
	counts, sum, total := h.Snapshot()
	if total != 5 || sum != 565.5 {
		t.Fatalf("histogram total=%d sum=%g", total, sum)
	}
	want := []uint64{1, 2, 1, 1} // <=1, <=10, <=100, +Inf
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all %v)", i, counts[i], w, counts)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var p *Probe
	var c *Collector
	sp := p.Span("PHASE", "x")
	sp.End()
	p.Counter("a_total").Inc()
	p.Gauge("b_ratio").Set(1)
	p.Histogram("c_seconds", nil).Observe(1)
	if p.Tracer().Spans() != nil || p.Metrics().Counter("d_total") != nil {
		t.Fatal("nil probe leaked non-nil instruments")
	}
	if c.NewProbe("rank0", NewStepClock()) != nil {
		t.Fatal("nil collector built a probe")
	}
	c.Attach(NewProbe("r", NewStepClock()))
	if got := c.Probes(); got != nil {
		t.Fatalf("nil collector holds probes %v", got)
	}
	var tr *Tracer
	tr.Add("l", "p", "n", 0, 1)
	s := tr.Start("l", "p", "n")
	s.End()
	var ctr *Counter
	ctr.Add(1)
	if ctr.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var h *Histogram
	h.Observe(1)
	var g *Gauge
	g.Set(1)
}

func TestSpanUsesClock(t *testing.T) {
	clock := NewStepClock()
	tr := NewTracer(clock)
	sp := tr.Start("rank0", "FORWARD", "step0")
	clock.Now() // an intervening operation tick
	sp.End()
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("%d spans", len(spans))
	}
	if spans[0].End-spans[0].Start != 2 {
		t.Fatalf("span duration %g ops, want 2", spans[0].End-spans[0].Start)
	}
}

func TestCollectorGatherMerges(t *testing.T) {
	col := NewCollector()
	for r := 0; r < 3; r++ {
		p := col.NewProbe("rank"+string(rune('0'+r)), NewStepClock())
		p.Counter("sent_bytes").Add(float64(10 * (r + 1)))
		p.Gauge("fill_ratio").Set(float64(r))
		p.Histogram("step_ops", []float64{1, 2}).Observe(float64(r))
	}
	snaps := col.Gather()
	byName := map[string]MetricSnapshot{}
	for _, s := range snaps {
		byName[s.Name] = s
	}
	if got := byName["sent_bytes"]; got.Kind != "counter" || got.Value != 60 {
		t.Fatalf("sent_bytes = %+v, want summed 60", got)
	}
	if got := byName["fill_ratio"]; got.Kind != "gauge" || got.Value != 2 {
		t.Fatalf("fill_ratio = %+v, want max 2", got)
	}
	h := byName["step_ops"]
	if h.Kind != "histogram" || h.Hist == nil || h.Hist.Total != 3 || h.Hist.Sum != 3 {
		t.Fatalf("step_ops = %+v", h)
	}
	if h.PerLane["rank1"] != 1 {
		t.Fatalf("per-lane histogram count %v", h.PerLane)
	}
}

func TestSummarize(t *testing.T) {
	col := NewCollector()
	p := col.NewProbe("rank0", ClockFunc(func() float64 { return 0 }))
	p.Tracer().Add("rank0", "FORWARD", "s0", 0, 2)
	p.Tracer().Add("rank0", "FORWARD", "s1", 2, 3)
	p.Tracer().Add("rank0", "MPI_ALLREDUCE", "buf0", 3, 7)
	p.Counter("train_steps_total").Inc()
	sum := col.Summarize()
	if sum.Spans != 3 || len(sum.Lanes) != 1 || sum.Lanes[0] != "rank0" {
		t.Fatalf("summary %+v", sum)
	}
	if len(sum.Phases) != 2 {
		t.Fatalf("phases %+v", sum.Phases)
	}
	for _, ph := range sum.Phases {
		switch ph.Phase {
		case "FORWARD":
			if ph.Count != 2 || math.Abs(ph.Total-3) > 1e-12 {
				t.Fatalf("FORWARD %+v", ph)
			}
		case "MPI_ALLREDUCE":
			if ph.Count != 1 || math.Abs(ph.Total-4) > 1e-12 {
				t.Fatalf("MPI_ALLREDUCE %+v", ph)
			}
		default:
			t.Fatalf("unexpected phase %q", ph.Phase)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 10, 4)
	want := []float64{1e-6, 1e-5, 1e-4, 1e-3}
	if len(b) != len(want) {
		t.Fatalf("buckets %v", b)
	}
	for i := range want {
		if math.Abs(b[i]-want[i]) > want[i]*1e-9 {
			t.Fatalf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
	if ExpBuckets(0, 10, 4) != nil || ExpBuckets(1, 1, 4) != nil || ExpBuckets(1, 2, 0) != nil {
		t.Fatal("degenerate bucket specs accepted")
	}
}

func TestNonMonotonicClockClamped(t *testing.T) {
	vals := []float64{5, 1} // End reads an earlier time than Start
	i := 0
	tr := NewTracer(ClockFunc(func() float64 { v := vals[i]; i++; return v }))
	sp := tr.Start("l", "P", "n")
	sp.End()
	s := tr.Spans()[0]
	if s.End < s.Start {
		t.Fatalf("span not clamped: %+v", s)
	}
}

func TestMetricSuffixesDocumented(t *testing.T) {
	// The suffix list is part of the public contract (docs, seglint
	// pass); catch accidental edits.
	joined := strings.Join(MetricSuffixes, ",")
	if joined != "_seconds,_bytes,_total,_ratio,_ops,_events,_norm" {
		t.Fatalf("MetricSuffixes changed: %s", joined)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry("rank0")
	h := r.Histogram("step_seconds", []float64{1, 2, 4, 8})
	// 10 observations in (1,2], 10 in (2,4]: p50 at the boundary, p95
	// and p99 interpolated inside the (2,4] bucket.
	for i := 0; i < 10; i++ {
		h.Observe(1.5)
		h.Observe(3)
	}
	cases := []struct{ q, want float64 }{
		{0.5, 2},     // rank 10 exhausts the (1,2] bucket exactly
		{0.95, 3.8},  // 1 + 2 + (19-10)/10 * 2
		{0.99, 3.96}, // 1 + 2 + (19.8-10)/10 * 2
		{0, 1},       // rank 0 clamps to the owning bucket's low edge
		{1, 4},       // all mass within the finite bounds
		{-0.5, 1},    // clamped to 0
		{1.5, 4},     // clamped to 1
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	var nilH *Histogram
	if !math.IsNaN(nilH.Quantile(0.5)) {
		t.Error("nil histogram quantile not NaN")
	}
	r := NewRegistry("rank0")
	empty := r.Histogram("empty_seconds", []float64{1, 2})
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty histogram quantile not NaN")
	}
	if !math.IsNaN(empty.Quantile(math.NaN())) {
		t.Error("NaN q not NaN")
	}
	// All mass beyond the last finite bound: the estimate saturates at
	// that bound rather than inventing a value.
	over := r.Histogram("over_seconds", []float64{1, 2})
	over.Observe(100)
	if got := over.Quantile(0.5); got != 2 {
		t.Errorf("overflow-bucket quantile = %v, want last bound 2", got)
	}
	// No finite bounds at all: nothing to interpolate against.
	unbounded := r.Histogram("unbounded_seconds", nil)
	unbounded.Observe(3)
	if !math.IsNaN(unbounded.Quantile(0.5)) {
		t.Error("bound-less histogram quantile not NaN")
	}
}

func TestQuantileName(t *testing.T) {
	cases := map[string]string{
		"perfsim_step_seconds":     "perfsim_step_p99_seconds",
		"transport_sent_bytes":     "transport_sent_p99_bytes",
		"collective_allreduce_ops": "collective_allreduce_p99_ops",
	}
	for in, want := range cases {
		if got := quantileName(in, "p99"); got != want {
			t.Errorf("quantileName(%q) = %q, want %q", in, got, want)
		}
		if !ValidMetricName(quantileName(in, "p50")) {
			t.Errorf("derived name %q breaks the convention", quantileName(in, "p50"))
		}
	}
}
