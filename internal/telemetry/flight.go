package telemetry

import (
	"io"
	"sync"

	"segscale/internal/timeline"
)

// FlightEvent is one entry in the flight recorder: a finished span or
// an instantaneous mark (Start == End), in the owning clock's units.
// Edge mirrors the span's message-edge attribute, so a flight dump
// keeps the causal structure trace analysis needs.
type FlightEvent struct {
	Lane  string
	Phase string
	Name  string
	Start float64
	End   float64
	Edge  string
}

// FlightRecorder is a bounded ring buffer of the most recent telemetry
// events — the always-on "black box" that can be dumped as a Chrome
// trace at any moment (on demand over HTTP, on SIGQUIT, or when crash
// recovery trips) without waiting for the run to finish. Once attached
// to a Collector via EnableFlight, every span ended and every Mark
// recorded through that collector's probes also lands here; when the
// ring wraps, the oldest events are overwritten, so a dump always
// shows the last Cap() events leading up to the moment of the dump.
//
// The ring holds event *values* under one short-lived mutex per
// record; the critical section is a copy of five words plus an index
// bump, so writers on different rank goroutines contend only for
// nanoseconds. A nil *FlightRecorder is a valid no-op.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []FlightEvent
	next  int
	n     int
	total uint64
}

// DefaultFlightCapacity is the ring size EnableFlight uses when the
// caller passes a non-positive capacity.
const DefaultFlightCapacity = 4096

// NewFlightRecorder returns a recorder keeping the last capacity
// events (DefaultFlightCapacity if capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{buf: make([]FlightEvent, capacity)}
}

// Record appends an event, overwriting the oldest once the ring is
// full. Events with End < Start are clamped to zero duration so a
// dump can never produce a trace chrome://tracing rejects. Nil-safe.
func (f *FlightRecorder) Record(ev FlightEvent) {
	if f == nil {
		return
	}
	if ev.End < ev.Start {
		ev.End = ev.Start
	}
	f.mu.Lock()
	f.buf[f.next] = ev
	f.next++
	if f.next == len(f.buf) {
		f.next = 0
	}
	if f.n < len(f.buf) {
		f.n++
	}
	f.total++
	f.mu.Unlock()
}

// Snapshot returns the retained events oldest-first.
func (f *FlightRecorder) Snapshot() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEvent, 0, f.n)
	start := f.next - f.n
	if start < 0 {
		start += len(f.buf)
	}
	for i := 0; i < f.n; i++ {
		out = append(out, f.buf[(start+i)%len(f.buf)])
	}
	return out
}

// Len returns how many events the ring currently retains.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// Cap returns the ring capacity (0 for nil).
func (f *FlightRecorder) Cap() int {
	if f == nil {
		return 0
	}
	return len(f.buf)
}

// Total returns how many events were ever recorded, including those
// the ring has since overwritten.
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// WriteChromeTrace dumps the retained window in Chrome trace-event
// format — the same format the post-hoc exporters use, so
// chrome://tracing and trace-stats consume a flight dump unchanged.
func (f *FlightRecorder) WriteChromeTrace(w io.Writer) error {
	rec := &timeline.Recorder{Enabled: true}
	for _, ev := range f.Snapshot() {
		rec.AddEdge(ev.Lane, ev.Phase, ev.Name, ev.Edge, ev.Start, ev.End)
	}
	return rec.WriteChromeTrace(w)
}

// StepObserver receives a notification after each completed training
// or simulated step — the live efficiency monitor's feed. lane names
// the executor ("rank0", "rank0.r1", "gpus6"), step is the global step
// index, imgs the images the step processed on that lane, and stepSec
// the step's duration in virtual seconds when the producer models time
// (the performance simulator). Real training passes stepSec <= 0 —
// it deliberately never reads a clock — leaving wall timing to the
// observer. Implementations must be safe for concurrent use from many
// rank goroutines and must not influence the run they observe.
type StepObserver interface {
	ObserveStep(lane string, step, imgs int, stepSec float64)
}

// MultiObserver fans ObserveStep out to several observers, skipping
// nils. It returns nil when no non-nil observer remains, so callers
// can assign the result to a config field unconditionally.
func MultiObserver(obs ...StepObserver) StepObserver {
	live := make(multiObserver, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	if len(live) == 0 {
		return nil
	}
	return live
}

type multiObserver []StepObserver

func (m multiObserver) ObserveStep(lane string, step, imgs int, stepSec float64) {
	for _, o := range m {
		o.ObserveStep(lane, step, imgs, stepSec)
	}
}
