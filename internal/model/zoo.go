package model

import "fmt"

// DLv3Plus returns the DeepLab-v3+ / Xception-65 profile at
// output-stride 16 on 513×513 crops — the paper's training
// configuration (batch 4 per GPU — the 16 GB V100 memory ceiling at 513² —
// and 6.7 img/s on one V100).
func DLv3Plus() *Profile {
	p := &Profile{
		Name:              "deeplab-v3plus-xception65",
		CropSize:          513,
		BatchPerGPU:       4,
		MeasuredImgPerSec: 6.7,
	}
	// Spatial sizes along the backbone: 513 → 257 (entry conv s2)
	// → 129 → 65 → 33; the middle and exit flows stay at 33 (atrous,
	// output-stride 16).
	const s2, s4, s8, s16 = 257, 129, 65, 33

	add := func(l Layer) { p.Layers = append(p.Layers, l) }

	// Entry flow.
	add(conv("entry.conv1", 3, 32, 3, s2, s2, false))
	add(bn("entry.bn1", 32, s2, s2))
	add(conv("entry.conv2", 32, 64, 3, s2, s2, false))
	add(bn("entry.bn2", 64, s2, s2))
	entryBlock := func(name string, cin, cout, size int) {
		add(sepconv(name+".sep1", cin, cout, size, size))
		add(sepconv(name+".sep2", cout, cout, size, size))
		add(sepconv(name+".sep3", cout, cout, size, size))
		add(conv(name+".proj", cin, cout, 1, size, size, false))
	}
	entryBlock("entry.block1", 64, 128, s4)
	entryBlock("entry.block2", 128, 256, s8)
	entryBlock("entry.block3", 256, 728, s16)

	// Middle flow: 16 residual blocks of three 728-channel sepconvs.
	for i := 0; i < 16; i++ {
		for j := 0; j < 3; j++ {
			add(sepconv(fmt.Sprintf("middle.block%d.sep%d", i+1, j+1), 728, 728, s16, s16))
		}
	}

	// Exit flow (atrous, stride 1 at OS16).
	add(sepconv("exit.block1.sep1", 728, 728, s16, s16))
	add(sepconv("exit.block1.sep2", 728, 1024, s16, s16))
	add(conv("exit.block1.proj", 728, 1024, 1, s16, s16, false))
	add(sepconv("exit.sep1", 1024, 1536, s16, s16))
	add(sepconv("exit.sep2", 1536, 1536, s16, s16))
	add(sepconv("exit.sep3", 1536, 2048, s16, s16))

	// ASPP at OS16: 1×1, three atrous 3×3 (rates 6/12/18), image
	// pooling, projection.
	add(conv("aspp.b0", 2048, 256, 1, s16, s16, false))
	add(bn("aspp.b0bn", 256, s16, s16))
	for i, r := range []int{6, 12, 18} {
		add(conv(fmt.Sprintf("aspp.b%d.rate%d", i+1, r), 2048, 256, 3, s16, s16, false))
		add(bn(fmt.Sprintf("aspp.b%dbn", i+1), 256, s16, s16))
	}
	add(conv("aspp.pool", 2048, 256, 1, 1, 1, true))
	add(conv("aspp.project", 1280, 256, 1, s16, s16, false))
	add(bn("aspp.projectbn", 256, s16, s16))

	// Decoder at OS4: low-level reduction, two fusion convs,
	// classifier.
	add(conv("decoder.low", 256, 48, 1, s4, s4, false))
	add(bn("decoder.lowbn", 48, s4, s4))
	add(conv("decoder.fuse1", 304, 256, 3, s4, s4, false))
	add(bn("decoder.fuse1bn", 256, s4, s4))
	add(conv("decoder.fuse2", 256, 256, 3, s4, s4, false))
	add(bn("decoder.fuse2bn", 256, s4, s4))
	add(conv("decoder.classifier", 256, 21, 1, s4, s4, true))
	return p
}

// resnetStage describes one residual stage.
type resnetStage struct {
	blocks, mid, out, size int
}

// resnet assembles a bottleneck ResNet profile.
func resnet(name string, stages []resnetStage, batch int, imgPerSec float64) *Profile {
	p := &Profile{
		Name:              name,
		CropSize:          224,
		BatchPerGPU:       batch,
		MeasuredImgPerSec: imgPerSec,
	}
	add := func(l Layer) { p.Layers = append(p.Layers, l) }

	add(conv("conv1", 3, 64, 7, 112, 112, false))
	add(bn("bn1", 64, 112, 112))

	cin := 64
	for si, st := range stages {
		for b := 0; b < st.blocks; b++ {
			bname := fmt.Sprintf("layer%d.block%d", si+1, b+1)
			add(conv(bname+".conv1", cin, st.mid, 1, st.size, st.size, false))
			add(bn(bname+".bn1", st.mid, st.size, st.size))
			add(conv(bname+".conv2", st.mid, st.mid, 3, st.size, st.size, false))
			add(bn(bname+".bn2", st.mid, st.size, st.size))
			add(conv(bname+".conv3", st.mid, st.out, 1, st.size, st.size, false))
			add(bn(bname+".bn3", st.out, st.size, st.size))
			if b == 0 {
				add(conv(bname+".downsample", cin, st.out, 1, st.size, st.size, false))
				add(bn(bname+".downsamplebn", st.out, st.size, st.size))
			}
			cin = st.out
		}
	}
	// Classifier head (fc 2048→1000).
	add(Layer{Name: "fc", Params: 2048*1000 + 1000, FwdFLOPs: 2 * 2048 * 1000, ActBytes: 4 * 1000})
	return p
}

// ResNet50 returns the ResNet-50 classification profile (224² inputs,
// batch 32, 300 img/s on one V100) — the paper's contrast model whose
// compute-to-communication ratio makes scaling easy.
func ResNet50() *Profile {
	return resnet("resnet-50", []resnetStage{
		{3, 64, 256, 56},
		{4, 128, 512, 28},
		{6, 256, 1024, 14},
		{3, 512, 2048, 7},
	}, 32, 300)
}

// ResNet101 returns ResNet-101 (the other common DeepLab backbone) —
// a deeper contrast point between ResNet-50 and Xception-65; V100
// throughput from contemporary MLPerf-era measurements.
func ResNet101() *Profile {
	return resnet("resnet-101", []resnetStage{
		{3, 64, 256, 56},
		{4, 128, 512, 28},
		{23, 256, 1024, 14},
		{3, 512, 2048, 7},
	}, 32, 165)
}

// DLv3PlusAMP is the mixed-precision what-if: the same network with
// tensor-core arithmetic (measurements from the era put AMP speedups
// for convolution-heavy models near 2.5×). Gradient volume is
// unchanged (master weights stay fp32), so the comm/compute ratio
// worsens by the same factor — the forward-looking experiment for
// what faster GPUs do to this tuning study.
func DLv3PlusAMP() *Profile {
	p := DLv3Plus()
	p.Name = "deeplab-v3plus-xception65-amp"
	p.MeasuredImgPerSec *= 2.5
	return p
}

// ByName looks up a built-in profile.
func ByName(name string) (*Profile, error) {
	switch name {
	case "dlv3plus", "deeplab", "deeplab-v3plus-xception65":
		return DLv3Plus(), nil
	case "resnet50", "resnet-50":
		return ResNet50(), nil
	case "resnet101", "resnet-101":
		return ResNet101(), nil
	case "dlv3plus-amp", "deeplab-v3plus-xception65-amp":
		return DLv3PlusAMP(), nil
	default:
		return nil, fmt.Errorf("model: unknown profile %q", name)
	}
}

// Names lists the built-in profile names.
func Names() []string {
	return []string{"dlv3plus", "resnet50", "resnet101", "dlv3plus-amp"}
}
