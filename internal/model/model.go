// Package model describes the *full-size* networks of the paper as
// layer-by-layer profiles — parameter counts, per-image FLOPs, and
// the order in which gradients become available during the backward
// pass. The profiles drive the performance simulator; the actually
// trainable scaled-down network lives in internal/deeplab.
//
// Two models matter to the paper: DeepLab-v3+ with the Xception-65
// backbone (the workload, ~41 M parameters, 6.7 img/s on one V100)
// and ResNet-50 (the contrast model, 25.6 M parameters, 300 img/s).
package model

import "fmt"

// Layer is one parameterised operator in forward order.
type Layer struct {
	Name string
	// Params is the number of trainable scalars whose gradients the
	// allreduce must move (4 bytes each).
	Params int
	// FwdFLOPs is the forward cost for one image.
	FwdFLOPs float64
	// ActBytes is the activation storage per image this layer's
	// output needs (kept for the backward pass).
	ActBytes int
}

// BwdFLOPs uses the standard 2× rule (grad-input + grad-weight each
// cost about one forward).
func (l Layer) BwdFLOPs() float64 { return 2 * l.FwdFLOPs }

// Profile is a full network description.
type Profile struct {
	Name string
	// Layers in forward order.
	Layers []Layer
	// CropSize and BatchPerGPU are the training geometry the paper
	// used.
	CropSize    int
	BatchPerGPU int
	// MeasuredImgPerSec is the paper's single-V100 throughput, the
	// calibration anchor for the compute model.
	MeasuredImgPerSec float64
}

// TotalParams sums trainable scalars.
func (p *Profile) TotalParams() int {
	n := 0
	for _, l := range p.Layers {
		n += l.Params
	}
	return n
}

// GradientBytes is the per-step allreduce volume (fp32).
func (p *Profile) GradientBytes() int { return 4 * p.TotalParams() }

// FwdFLOPs is the per-image forward cost.
func (p *Profile) FwdFLOPs() float64 {
	s := 0.0
	for _, l := range p.Layers {
		s += l.FwdFLOPs
	}
	return s
}

// StepFLOPs is the full per-image training cost (fwd + bwd).
func (p *Profile) StepFLOPs() float64 { return 3 * p.FwdFLOPs() }

// GradTensor is one gradient buffer in the order the backward pass
// produces it (deepest layer first), with the fraction of backward
// time elapsed when it becomes ready — what Horovod's fusion cycle
// consumes.
type GradTensor struct {
	Name  string
	Bytes int
	// ReadyFrac ∈ (0,1]: fraction of the backward pass completed when
	// this gradient is available.
	ReadyFrac float64
}

// GradientSchedule returns gradient tensors in backward order with
// ready fractions proportional to cumulative backward FLOPs.
// Parameterless layers contribute time but no tensor.
func (p *Profile) GradientSchedule() []GradTensor {
	totalBwd := 0.0
	for _, l := range p.Layers {
		totalBwd += l.BwdFLOPs()
	}
	if totalBwd == 0 {
		panic(fmt.Sprintf("model %q: zero backward cost", p.Name))
	}
	var out []GradTensor
	done := 0.0
	for i := len(p.Layers) - 1; i >= 0; i-- {
		l := p.Layers[i]
		done += l.BwdFLOPs()
		if l.Params == 0 {
			continue
		}
		out = append(out, GradTensor{Name: l.Name, Bytes: 4 * l.Params, ReadyFrac: done / totalBwd})
	}
	return out
}

// conv adds a standard convolution layer.
func conv(name string, cin, cout, k, outH, outW int, bias bool) Layer {
	params := cin * cout * k * k
	if bias {
		params += cout
	}
	flops := 2 * float64(cin*cout*k*k) * float64(outH*outW)
	return Layer{Name: name, Params: params, FwdFLOPs: flops, ActBytes: 4 * cout * outH * outW}
}

// sepconv adds a depthwise-separable convolution (depthwise 3×3 +
// pointwise 1×1 + both batch norms), the Xception building block.
func sepconv(name string, cin, cout, outH, outW int) Layer {
	params := cin*9 + cin*cout + 2*cin + 2*cout // dw + pw + 2 BNs
	flops := 2*float64(cin*9)*float64(outH*outW) + 2*float64(cin*cout)*float64(outH*outW)
	// Depthwise and pointwise outputs are both kept for backward.
	return Layer{Name: name, Params: params, FwdFLOPs: flops, ActBytes: 4 * (cin + cout) * outH * outW}
}

// bn adds a standalone batch-norm layer.
func bn(name string, c, outH, outW int) Layer {
	return Layer{Name: name, Params: 2 * c, FwdFLOPs: 4 * float64(c*outH*outW), ActBytes: 4 * c * outH * outW}
}

// ActivationBytes is the per-image activation footprint across the
// whole network (everything the backward pass rereads).
func (p *Profile) ActivationBytes() int {
	n := 0
	for _, l := range p.Layers {
		n += l.ActBytes
	}
	return n
}

// V100MemoryBytes is the HBM capacity of Summit's V100s.
const V100MemoryBytes = 16 << 30

// modelStateFactor covers weights + gradients + optimiser momentum
// (3× parameters) in fp32.
const modelStateFactor = 3

// activationLiveFactor scales raw layer-output bytes to what a TF1
// run actually holds live: pre-activation copies, activation
// gradients during backward, im2col/cuDNN workspaces and allocator
// fragmentation. 3× matches observed V100 batch ceilings (DLv3+ at
// 513² topping out around batch 8).
const activationLiveFactor = 3

// MaxBatchPerGPU returns the largest per-GPU batch that fits in V100
// memory: model state + batch × activations (with a small framework
// workspace reserve).
func (p *Profile) MaxBatchPerGPU() int {
	// cuDNN workspaces, fusion buffer, allocator slack — the GPU-side
	// analogue of the CPU trainer's pooled tensor.Workspace arena
	// (docs/PERFORMANCE.md).
	const workspace = 1 << 30
	free := V100MemoryBytes - workspace - modelStateFactor*4*p.TotalParams()
	if free <= 0 {
		return 0
	}
	return free / (activationLiveFactor * p.ActivationBytes())
}

// FitsInMemory reports whether a per-GPU batch fits on a V100.
func (p *Profile) FitsInMemory(batch int) bool {
	return batch >= 1 && batch <= p.MaxBatchPerGPU()
}
