package model

import (
	"math"
	"sort"
	"testing"
)

func TestDLv3PlusParamCount(t *testing.T) {
	p := DLv3Plus()
	got := p.TotalParams()
	// Literature counts for DLv3+/Xception-65 range ~41–55 M
	// depending on variant; the widely cited figure for the Xception
	// backbone variant is 54.7 M. Our reconstruction must land in
	// that range for the gradient volume to be right.
	if got < 40_000_000 || got > 58_000_000 {
		t.Fatalf("DLv3+ params = %d, want ≈41–55M", got)
	}
	// Gradient volume ≈ 160–225 MB.
	gb := p.GradientBytes()
	if gb < 150<<20 || gb > 230<<20 {
		t.Fatalf("gradient bytes = %d (%.1f MiB)", gb, float64(gb)/(1<<20))
	}
}

func TestResNet50ParamCount(t *testing.T) {
	p := ResNet50()
	got := p.TotalParams()
	// Canonical ResNet-50: 25.6 M.
	if got < 23_000_000 || got > 28_000_000 {
		t.Fatalf("ResNet-50 params = %d, want ≈25.6M", got)
	}
}

func TestResNet50FLOPs(t *testing.T) {
	p := ResNet50()
	// Canonical forward cost ≈ 4.1 GFLOPs (2 ops per MAC) at 224².
	f := p.FwdFLOPs()
	if f < 6e9 || f > 10e9 {
		t.Fatalf("ResNet-50 fwd FLOPs = %.3g, want ≈8.2e9 (2/MAC convention)", f)
	}
}

func TestDLv3PlusMuchHeavierThanResNet(t *testing.T) {
	dl, rn := DLv3Plus(), ResNet50()
	// The paper's motivating observation: per-image compute of DLv3+
	// at 513² is vastly above ResNet-50 at 224² (6.7 vs 300 img/s).
	ratio := dl.FwdFLOPs() / rn.FwdFLOPs()
	if ratio < 8 {
		t.Fatalf("DLv3+/RN50 FLOP ratio = %.1f, want ≫1", ratio)
	}
	// And its gradient volume is larger too.
	if dl.GradientBytes() <= rn.GradientBytes() {
		t.Fatal("DLv3+ gradient volume should exceed ResNet-50's")
	}
}

func TestCommComputeRatioContrast(t *testing.T) {
	// Per *second of compute*, ResNet-50 produces far more gradient
	// traffic than DLv3+ — the reason DLv3+ *should* scale well and
	// why its poor default scaling pointed at Horovod overheads
	// rather than bandwidth.
	dl, rn := DLv3Plus(), ResNet50()
	dlBytesPerSec := float64(dl.GradientBytes()) * dl.MeasuredImgPerSec / float64(dl.BatchPerGPU)
	rnBytesPerSec := float64(rn.GradientBytes()) * rn.MeasuredImgPerSec / float64(rn.BatchPerGPU)
	if dlBytesPerSec >= rnBytesPerSec {
		t.Fatalf("expected RN50 to be comm-denser: DLv3+=%.3g B/s vs RN50=%.3g B/s",
			dlBytesPerSec, rnBytesPerSec)
	}
}

func TestGradientScheduleProperties(t *testing.T) {
	for _, p := range []*Profile{DLv3Plus(), ResNet50()} {
		sched := p.GradientSchedule()
		if len(sched) == 0 {
			t.Fatalf("%s: empty schedule", p.Name)
		}
		// Total bytes must equal the profile's gradient volume.
		total := 0
		for _, g := range sched {
			total += g.Bytes
		}
		if total != p.GradientBytes() {
			t.Fatalf("%s: schedule bytes %d != %d", p.Name, total, p.GradientBytes())
		}
		// Ready fractions are non-decreasing in (0,1].
		if !sort.SliceIsSorted(sched, func(i, j int) bool { return sched[i].ReadyFrac < sched[j].ReadyFrac }) {
			// Equal fractions are fine; check monotone non-decreasing.
			for i := 1; i < len(sched); i++ {
				if sched[i].ReadyFrac < sched[i-1].ReadyFrac {
					t.Fatalf("%s: ready fractions decrease at %d", p.Name, i)
				}
			}
		}
		last := sched[len(sched)-1].ReadyFrac
		if math.Abs(last-1) > 1e-9 {
			t.Fatalf("%s: final ready fraction %g", p.Name, last)
		}
		if sched[0].ReadyFrac <= 0 {
			t.Fatalf("%s: first ready fraction %g", p.Name, sched[0].ReadyFrac)
		}
		// First gradients come from the deepest layer (classifier/fc).
		first := sched[0].Name
		if p.Name == "resnet-50" && first != "fc" {
			t.Fatalf("ResNet-50 first gradient from %q, want fc", first)
		}
		if p.Name != "resnet-50" && first != "decoder.classifier" {
			t.Fatalf("DLv3+ first gradient from %q, want decoder.classifier", first)
		}
	}
}

func TestManyGradientTensors(t *testing.T) {
	// Horovod fusion only matters because real models emit hundreds
	// of small tensors; the profile must reflect that.
	if n := len(DLv3Plus().GradientSchedule()); n < 80 {
		t.Fatalf("DLv3+ has %d gradient tensors, want ≫80", n)
	}
	if n := len(ResNet50().GradientSchedule()); n < 100 {
		t.Fatalf("ResNet-50 has %d gradient tensors, want >100", n)
	}
}

func TestStepFLOPsIsTripleForward(t *testing.T) {
	p := ResNet50()
	if math.Abs(p.StepFLOPs()-3*p.FwdFLOPs()) > 1 {
		t.Fatal("step FLOPs should be 3× forward")
	}
}

func TestByName(t *testing.T) {
	for _, name := range append(Names(), "deeplab", "resnet-50", "resnet-101") {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("vgg"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestResNet101Profile(t *testing.T) {
	p := ResNet101()
	// Canonical ResNet-101: 44.5 M parameters, ~2× ResNet-50 FLOPs.
	if got := p.TotalParams(); got < 41_000_000 || got > 48_000_000 {
		t.Fatalf("ResNet-101 params = %d, want ≈44.5M", got)
	}
	r50 := ResNet50()
	ratio := p.FwdFLOPs() / r50.FwdFLOPs()
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("RN101/RN50 FLOP ratio %.2f, want ≈1.9", ratio)
	}
	if p.MeasuredImgPerSec >= r50.MeasuredImgPerSec {
		t.Fatal("deeper network should be slower")
	}
	if len(p.GradientSchedule()) <= len(r50.GradientSchedule()) {
		t.Fatal("deeper network should have more gradient tensors")
	}
}

func TestMemoryModel(t *testing.T) {
	dl, rn := DLv3Plus(), ResNet50()
	// DLv3+ at 513² is the memory-bound one: its configured batch
	// must fit, but not by much (the paper-era reality of batch 4–8
	// on a 16 GB V100).
	if !dl.FitsInMemory(dl.BatchPerGPU) {
		t.Fatalf("configured DLv3+ batch %d does not fit", dl.BatchPerGPU)
	}
	maxDL := dl.MaxBatchPerGPU()
	if maxDL < 4 || maxDL > 16 {
		t.Fatalf("DLv3+ max batch %d, want the 4–16 regime", maxDL)
	}
	if dl.FitsInMemory(maxDL + 1) {
		t.Fatal("over-limit batch accepted")
	}
	if dl.FitsInMemory(0) {
		t.Fatal("zero batch accepted")
	}
	// ResNet-50 at 224² has far more headroom.
	if rn.MaxBatchPerGPU() <= 2*maxDL {
		t.Fatalf("ResNet-50 max batch %d should dwarf DLv3+'s %d", rn.MaxBatchPerGPU(), maxDL)
	}
	if !rn.FitsInMemory(rn.BatchPerGPU) {
		t.Fatal("ResNet-50 configured batch does not fit")
	}
	// Activation footprint: DLv3+ per image ≫ ResNet-50 per image.
	if dl.ActivationBytes() <= 4*rn.ActivationBytes() {
		t.Fatalf("activation contrast too small: %d vs %d", dl.ActivationBytes(), rn.ActivationBytes())
	}
}

func TestImpliedV100EfficiencyPlausible(t *testing.T) {
	// Calibration sanity: measured throughput and FLOP totals must
	// imply a plausible fraction of V100 peak (15.7 TFLOP/s fp32 —
	// TF 1.x-era DeepLab ran largely in fp32).
	for _, p := range []*Profile{DLv3Plus(), ResNet50()} {
		flopsPerSec := p.StepFLOPs() * p.MeasuredImgPerSec
		eff := flopsPerSec / 15.7e12
		if eff < 0.02 || eff > 0.95 {
			t.Errorf("%s: implied V100 efficiency %.2f implausible", p.Name, eff)
		}
	}
}
