package deeplab

import (
	"math"
	"testing"

	"segscale/internal/nn"
	"segscale/internal/segdata"
	"segscale/internal/tensor"
)

func smallCfg() Config {
	cfg := DefaultConfig()
	cfg.InputSize = 16
	cfg.Width = 6
	cfg.DeepBlocks = 1
	cfg.AtrousRates = [3]int{1, 2, 3}
	cfg.DropProb = 0
	return cfg
}

func TestForwardShape(t *testing.T) {
	m := New(smallCfg())
	x := tensor.New(2, 3, 16, 16)
	logits := m.Forward(x, false)
	want := []int{2, 21, 16, 16}
	for i, d := range want {
		if logits.Dim(i) != d {
			t.Fatalf("logits shape %v, want %v", logits.Shape, want)
		}
	}
}

func TestForwardWrongSizePanics(t *testing.T) {
	m := New(smallCfg())
	defer func() {
		if recover() == nil {
			t.Error("wrong input size accepted")
		}
	}()
	m.Forward(tensor.New(1, 3, 24, 24), false)
}

func TestConfigValidation(t *testing.T) {
	bads := []func(c *Config){
		func(c *Config) { c.InputSize = 10 },
		func(c *Config) { c.Classes = 1 },
		func(c *Config) { c.AtrousRates = [3]int{0, 2, 3} },
		func(c *Config) { c.DeepBlocks = 0 },
	}
	for i, mutate := range bads {
		cfg := smallCfg()
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad config %d accepted", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestDeterministicInit(t *testing.T) {
	a, b := New(smallCfg()), New(smallCfg())
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		t.Fatalf("param lists differ: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i].Name != pb[i].Name {
			t.Fatalf("param order differs at %d: %s vs %s", i, pa[i].Name, pb[i].Name)
		}
		for j := range pa[i].W.Data {
			if pa[i].W.Data[j] != pb[i].W.Data[j] {
				t.Fatalf("weights differ for %s", pa[i].Name)
			}
		}
	}
}

func TestParamCountScalesWithWidth(t *testing.T) {
	small := New(smallCfg())
	cfg := smallCfg()
	cfg.Width = 12
	big := New(cfg)
	if big.ParamCount() <= small.ParamCount() {
		t.Fatalf("width 12 params %d not above width 6 params %d", big.ParamCount(), small.ParamCount())
	}
}

func TestLossDecreasesUnderTraining(t *testing.T) {
	cfg := smallCfg()
	m := New(cfg)
	ds := segdata.New(8, cfg.InputSize, cfg.InputSize, 42)
	x, labels := ds.Batch([]int{0, 1, 2, 3})
	opt := nn.NewSGD(0.05)

	first := m.Loss(x, labels, segdata.IgnoreLabel, true)
	opt.Step(m.Params())
	nn.ZeroGrads(m.Params())
	var last float64
	for i := 0; i < 14; i++ {
		last = m.Loss(x, labels, segdata.IgnoreLabel, true)
		opt.Step(m.Params())
		nn.ZeroGrads(m.Params())
	}
	if !(last < first*0.7) {
		t.Fatalf("loss did not drop: first %.4f, last %.4f", first, last)
	}
	if math.IsNaN(last) || math.IsInf(last, 0) {
		t.Fatalf("loss diverged: %v", last)
	}
}

func TestGradientsFlowToAllParams(t *testing.T) {
	cfg := smallCfg()
	m := New(cfg)
	ds := segdata.New(4, cfg.InputSize, cfg.InputSize, 7)
	x, labels := ds.Batch([]int{0, 1})
	m.Loss(x, labels, segdata.IgnoreLabel, true)
	zero := 0
	for _, p := range m.Params() {
		if p.G.MaxAbs() == 0 {
			zero++
			t.Logf("zero gradient: %s", p.Name)
		}
	}
	// ReLU dead units can zero the odd tensor, but the bulk of the
	// network must receive gradient.
	if zero > len(m.Params())/10 {
		t.Fatalf("%d of %d parameter tensors have zero gradient", zero, len(m.Params()))
	}
}

func TestPredictShapeAndRange(t *testing.T) {
	cfg := smallCfg()
	m := New(cfg)
	ds := segdata.New(4, cfg.InputSize, cfg.InputSize, 3)
	x, _ := ds.Batch([]int{0, 1})
	pred := m.Predict(x)
	if len(pred) != 2*cfg.InputSize*cfg.InputSize {
		t.Fatalf("prediction length %d", len(pred))
	}
	for _, p := range pred {
		if p < 0 || p >= int32(cfg.Classes) {
			t.Fatalf("prediction %d out of range", p)
		}
	}
}

func TestEvalModeDeterministic(t *testing.T) {
	cfg := smallCfg()
	cfg.DropProb = 0.5 // dropout must be inert in eval mode
	m := New(cfg)
	ds := segdata.New(4, cfg.InputSize, cfg.InputSize, 5)
	x, _ := ds.Batch([]int{0})
	a := m.Forward(x, false)
	b := m.Forward(x, false)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("eval forward not deterministic")
		}
	}
}

func TestNoDecoderVariant(t *testing.T) {
	// DeepLab-v3 (no decoder): same logits contract, fewer params,
	// still trainable.
	cfg := smallCfg()
	cfg.NoDecoder = true
	v3 := New(cfg)
	v3plus := New(smallCfg())
	if v3.ParamCount() >= v3plus.ParamCount() {
		t.Fatalf("v3 params %d not below v3+ %d", v3.ParamCount(), v3plus.ParamCount())
	}
	x := tensor.New(1, 3, 16, 16)
	logits := v3.Forward(x, false)
	if logits.Dim(1) != 21 || logits.Dim(2) != 16 {
		t.Fatalf("v3 logits %v", logits.Shape)
	}
	ds := segdata.New(4, cfg.InputSize, cfg.InputSize, 21)
	xb, labels := ds.Batch([]int{0, 1})
	opt := nn.NewSGD(0.05)
	first := v3.Loss(xb, labels, segdata.IgnoreLabel, true)
	opt.Step(v3.Params())
	nn.ZeroGrads(v3.Params())
	var last float64
	for i := 0; i < 10; i++ {
		last = v3.Loss(xb, labels, segdata.IgnoreLabel, true)
		opt.Step(v3.Params())
		nn.ZeroGrads(v3.Params())
	}
	if !(last < first) {
		t.Fatalf("v3 did not learn: %.4f → %.4f", first, last)
	}
	// BatchNorms list excludes the (absent) decoder layers.
	if len(v3.BatchNorms()) >= len(v3plus.BatchNorms()) {
		t.Fatal("v3 should have fewer batch norms")
	}
}

func TestFCNBaseline(t *testing.T) {
	cfg := smallCfg()
	f := NewFCN(cfg)
	ds := segdata.New(4, cfg.InputSize, cfg.InputSize, 9)
	x, labels := ds.Batch([]int{0, 1})
	logits := f.Forward(x, false)
	if logits.Dim(1) != cfg.Classes || logits.Dim(2) != cfg.InputSize {
		t.Fatalf("fcn logits %v", logits.Shape)
	}
	opt := nn.NewSGD(0.05)
	first := f.Loss(x, labels, segdata.IgnoreLabel, true)
	opt.Step(f.Params())
	nn.ZeroGrads(f.Params())
	var last float64
	for i := 0; i < 14; i++ {
		last = f.Loss(x, labels, segdata.IgnoreLabel, true)
		opt.Step(f.Params())
		nn.ZeroGrads(f.Params())
	}
	if !(last < first) {
		t.Fatalf("fcn loss did not drop: %.4f → %.4f", first, last)
	}
}

func TestDeepLabHasMoreMachineryThanFCN(t *testing.T) {
	cfg := smallCfg()
	dl, fcn := New(cfg), NewFCN(cfg)
	// Same label space and input contract.
	x := tensor.New(1, 3, cfg.InputSize, cfg.InputSize)
	if dl.Forward(x, false).Dim(1) != fcn.Forward(x, false).Dim(1) {
		t.Fatal("class dims differ")
	}
	// DeepLab must contain atrous convolutions; the FCN must not.
	hasAtrous := func(params []*nn.Param) bool {
		for _, p := range params {
			if len(p.Name) > 5 && p.Name[:5] == "aspp." {
				return true
			}
		}
		return false
	}
	if !hasAtrous(dl.Params()) {
		t.Error("DeepLab has no ASPP parameters")
	}
	if hasAtrous(fcn.Params()) {
		t.Error("FCN has ASPP parameters")
	}
}

// End-to-end gradient check through the full graph at a few points.
func TestModelNumericalGradient(t *testing.T) {
	cfg := smallCfg()
	cfg.InputSize = 8
	m := New(cfg)
	ds := segdata.New(2, 8, 8, 13)
	x, labels := ds.Batch([]int{0})

	nn.ZeroGrads(m.Params())
	// Use eval-mode BN statistics to keep the function smooth for
	// finite differences (train-mode batch stats couple pixels).
	// First run one train pass to move running stats off init.
	m.Loss(x, labels, segdata.IgnoreLabel, true)
	nn.ZeroGrads(m.Params())

	logits := m.Forward(x, false)
	loss, dlogits := tensor.SoftmaxCrossEntropy(logits, labels, segdata.IgnoreLabel)
	_ = loss
	m.Backward(dlogits)

	eval := func() float64 {
		l, _ := tensor.SoftmaxCrossEntropy(m.Forward(x, false), labels, segdata.IgnoreLabel)
		return l
	}
	checked := 0
	for _, p := range m.Params() {
		if p.Name != "classifier.w" && p.Name != "dec.fuse2.w" && p.Name != "entry.w" {
			continue
		}
		for _, i := range []int{0, p.W.Len() / 2} {
			const eps = 1e-2
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			up := eval()
			p.W.Data[i] = orig - eps
			down := eval()
			p.W.Data[i] = orig
			want := (up - down) / (2 * eps)
			if d := math.Abs(float64(p.G.Data[i]) - want); d > 5e-2*(1+math.Abs(want)) {
				t.Errorf("%s grad[%d] = %g, numerical %g", p.Name, i, p.G.Data[i], want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no parameters checked — names changed?")
	}
}
