// Package deeplab implements a faithfully-shaped, scaled-down
// DeepLab-v3+ in pure Go: an Xception-style separable-convolution
// encoder with atrous (dilated) convolutions, the ASPP module
// (parallel atrous branches plus image-level pooling), and the v3+
// decoder that fuses low-level features through a skip connection.
// A plain FCN encoder-decoder ships alongside it as the contrast
// baseline.
//
// The full-size DeepLab-v3+/Xception-65 the paper trains is ~54M (as we count it; 41–55M in the literature)
// parameters on 513×513 crops — far beyond CPU training. This model
// keeps every architectural mechanism (separable convs, atrous rates,
// ASPP, decoder skip) at a width and resolution where real SGD
// converges in seconds, which is what the accuracy reproduction
// (paper: 80.8 % mIOU on VOC) needs. internal/model carries the
// full-size layer profile for the performance simulator.
package deeplab

import (
	"fmt"
	"math/rand"

	"segscale/internal/nn"
	"segscale/internal/tensor"
)

// Config sizes the network.
type Config struct {
	// InputSize is the (square) crop size; must be divisible by 4.
	InputSize int
	// Classes is the label-space size (21 for VOC).
	Classes int
	// Width is the base channel count (Xception-65 uses 32; the
	// scaled-down default is 12).
	Width int
	// AtrousRates are the ASPP dilation rates (paper: 6, 12, 18 at
	// output-stride 16; scaled down with the feature map).
	AtrousRates [3]int
	// DeepBlocks is the number of atrous residual blocks in the
	// encoder's middle flow.
	DeepBlocks int
	// DropProb is the ASPP-head spatial dropout probability.
	DropProb float64
	// NoDecoder drops the v3+ decoder (low-level skip + fusion
	// convs), reducing the architecture to DeepLab-v3: logits come
	// straight from the ASPP output, upsampled. The ablation that
	// distinguishes v3+ from v3.
	NoDecoder bool
	// Seed fixes weight initialisation (all ranks must agree before
	// the initial broadcast).
	Seed int64
}

// DefaultConfig returns the scaled-down training configuration.
func DefaultConfig() Config {
	return Config{
		InputSize:   24,
		Classes:     21,
		Width:       12,
		AtrousRates: [3]int{2, 4, 6},
		DeepBlocks:  2,
		DropProb:    0.1,
		Seed:        1,
	}
}

func (c Config) validate() {
	if c.InputSize%4 != 0 || c.InputSize < 8 {
		panic(fmt.Sprintf("deeplab: input size %d must be ≥8 and divisible by 4", c.InputSize))
	}
	if c.Classes < 2 || c.Width < 2 || c.DeepBlocks < 1 {
		panic(fmt.Sprintf("deeplab: degenerate config %+v", c))
	}
	for _, r := range c.AtrousRates {
		if r < 1 {
			panic("deeplab: atrous rate must be ≥1")
		}
	}
}

// sepConv builds one separable convolution unit: depthwise 3×3 (with
// dilation) → BN → ReLU → pointwise 1×1 → BN → ReLU.
func sepConv(rng *rand.Rand, name string, inC, outC, stride, dilation int) *nn.Sequential {
	pad := tensor.SamePad(3, dilation)
	if stride == 2 {
		pad = 1 // stride-2 halving uses the plain 3×3 geometry
	}
	return nn.NewSequential(
		nn.NewConv2D(rng, name+".dw", inC, inC, 3,
			tensor.ConvSpec{Stride: stride, Pad: pad, Dilation: dilation, Groups: inC}, false),
		nn.NewBatchNorm2D(name+".dwbn", inC),
		&nn.ReLU{Label: name + ".dw.relu"},
		nn.NewConv2D(rng, name+".pw", inC, outC, 1, tensor.ConvSpec{}, false),
		nn.NewBatchNorm2D(name+".pwbn", outC),
		&nn.ReLU{Label: name + ".pw.relu"},
	)
}

// xblock is an Xception-style residual block of two separable convs
// with an optional projection shortcut.
type xblock struct {
	body     *nn.Sequential
	shortcut nn.Layer // nil means identity
}

func newXBlock(rng *rand.Rand, name string, inC, outC, stride, dilation int) *xblock {
	b := &xblock{
		body: nn.NewSequential(
			sepConv(rng, name+".sep1", inC, outC, 1, dilation),
			sepConv(rng, name+".sep2", outC, outC, stride, dilation),
		),
	}
	if inC != outC || stride != 1 {
		b.shortcut = nn.NewSequential(
			nn.NewConv2D(rng, name+".proj", inC, outC, 1, tensor.ConvSpec{Stride: stride}, false),
			nn.NewBatchNorm2D(name+".projbn", outC),
		)
	}
	return b
}

func (b *xblock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := b.body.Forward(x, train)
	if b.shortcut != nil {
		out.Add(b.shortcut.Forward(x, train))
	} else {
		out.Add(x)
	}
	return out
}

func (b *xblock) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dx := b.body.Backward(dout)
	if b.shortcut != nil {
		dx.Add(b.shortcut.Backward(dout))
	} else {
		dx.Add(dout)
	}
	return dx
}

func (b *xblock) Params() []*nn.Param {
	out := b.body.Params()
	if b.shortcut != nil {
		out = append(out, b.shortcut.Params()...)
	}
	return out
}

func (b *xblock) BatchNorms() []*nn.BatchNorm2D {
	out := b.body.BatchNorms()
	if s, ok := b.shortcut.(nn.BatchNormer); ok {
		out = append(out, s.BatchNorms()...)
	}
	return out
}

func (b *xblock) SetWorkspace(ws *tensor.Workspace) {
	b.body.SetWorkspace(ws)
	if s, ok := b.shortcut.(nn.WorkspaceUser); ok {
		s.SetWorkspace(ws)
	}
}

func (b *xblock) SetActivationTap(tap nn.ActivationTap) {
	b.body.SetActivationTap(tap)
	if s, ok := b.shortcut.(nn.ActivationTapUser); ok {
		s.SetActivationTap(tap)
	}
}

// aspp is the Atrous Spatial Pyramid Pooling head: a 1×1 branch,
// three atrous 3×3 branches, and an image-pooling branch, concatenated
// and projected.
type aspp struct {
	branches []nn.Layer // 1×1 + three atrous (all inC→branchC)
	poolConv *nn.Sequential
	project  *nn.Sequential
	dropout  *nn.Dropout2D

	branchC  int
	featH    int
	featW    int
	branchIn *tensor.Tensor
	ws       *tensor.Workspace
}

func (a *aspp) SetWorkspace(ws *tensor.Workspace) {
	a.ws = ws
	for _, b := range a.branches {
		if u, ok := b.(nn.WorkspaceUser); ok {
			u.SetWorkspace(ws)
		}
	}
	a.poolConv.SetWorkspace(ws)
	a.project.SetWorkspace(ws)
	a.dropout.SetWorkspace(ws)
}

func (a *aspp) SetActivationTap(tap nn.ActivationTap) {
	for _, b := range a.branches {
		if u, ok := b.(nn.ActivationTapUser); ok {
			u.SetActivationTap(tap)
		}
	}
	a.poolConv.SetActivationTap(tap)
	a.project.SetActivationTap(tap)
}

func newASPP(rng *rand.Rand, inC, branchC, outC int, rates [3]int, drop float64) *aspp {
	a := &aspp{branchC: branchC}
	a.branches = append(a.branches, nn.NewSequential(
		nn.NewConv2D(rng, "aspp.b0", inC, branchC, 1, tensor.ConvSpec{}, false),
		nn.NewBatchNorm2D("aspp.b0bn", branchC),
		&nn.ReLU{Label: "aspp.b0.relu"},
	))
	for i, r := range rates {
		name := fmt.Sprintf("aspp.b%d", i+1)
		a.branches = append(a.branches, nn.NewSequential(
			nn.NewConv2D(rng, name, inC, branchC, 3,
				tensor.ConvSpec{Pad: tensor.SamePad(3, r), Dilation: r}, false),
			nn.NewBatchNorm2D(name+"bn", branchC),
			&nn.ReLU{Label: name + ".relu"},
		))
	}
	a.poolConv = nn.NewSequential(
		nn.NewConv2D(rng, "aspp.pool", inC, branchC, 1, tensor.ConvSpec{}, true),
		&nn.ReLU{Label: "aspp.pool.relu"},
	)
	a.project = nn.NewSequential(
		nn.NewConv2D(rng, "aspp.proj", branchC*5, outC, 1, tensor.ConvSpec{}, false),
		nn.NewBatchNorm2D("aspp.projbn", outC),
		&nn.ReLU{Label: "aspp.proj.relu"},
	)
	a.dropout = &nn.Dropout2D{P: drop, Seed: rng.Int63()}
	return a
}

func (a *aspp) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	a.featH, a.featW = x.Dim(2), x.Dim(3)
	a.branchIn = x
	var outs [5]*tensor.Tensor
	for i, b := range a.branches {
		outs[i] = b.Forward(x, train)
	}
	pooled := tensor.GlobalAvgPoolWS(x, a.ws)
	pooled = a.poolConv.Forward(pooled, train)
	outs[4] = tensor.BilinearResizeWS(pooled, a.featH, a.featW, a.ws)
	cat := nn.ConcatChannelsWS(a.ws, outs[:]...)
	return a.dropout.Forward(a.project.Forward(cat, train), train)
}

func (a *aspp) Backward(dout *tensor.Tensor) *tensor.Tensor {
	dout = a.dropout.Backward(dout)
	dcat := a.project.Backward(dout)
	sizes := [5]int{a.branchC, a.branchC, a.branchC, a.branchC, a.branchC}
	parts := nn.SplitChannelsWS(dcat, sizes[:], a.ws)
	var dx *tensor.Tensor
	for i, b := range a.branches {
		g := b.Backward(parts[i])
		if dx == nil {
			dx = g
		} else {
			dx.Add(g)
		}
	}
	// Pool branch: resize adjoint → conv → spread over the extent.
	dpool := tensor.BilinearResizeBackwardWS(parts[4], 1, 1, a.ws)
	dpool = a.poolConv.Backward(dpool)
	dx.Add(tensor.GlobalAvgPoolBackwardWS(dpool, a.featH, a.featW, a.ws))
	return dx
}

func (a *aspp) Params() []*nn.Param {
	var out []*nn.Param
	for _, b := range a.branches {
		out = append(out, b.Params()...)
	}
	out = append(out, a.poolConv.Params()...)
	out = append(out, a.project.Params()...)
	return out
}

func (a *aspp) BatchNorms() []*nn.BatchNorm2D {
	var out []*nn.BatchNorm2D
	for _, b := range a.branches {
		if s, ok := b.(nn.BatchNormer); ok {
			out = append(out, s.BatchNorms()...)
		}
	}
	out = append(out, a.poolConv.BatchNorms()...)
	out = append(out, a.project.BatchNorms()...)
	return out
}

// Model is the scaled-down DeepLab-v3+.
type Model struct {
	Cfg Config

	entry      *nn.Sequential // OS2, low-level features
	down       *xblock        // OS4
	deep       []*xblock      // atrous middle flow at OS4
	head       *aspp
	decLow     *nn.Sequential // 1×1 reduction of low-level features
	decoder    *nn.Sequential // fusion convs
	classifier *nn.Conv2D

	params []*nn.Param
	ws     *tensor.Workspace

	// Cached activations for the backward pass.
	lowFeat *tensor.Tensor
	lowC    int
}

// SetWorkspace implements Segmenter: every layer and the model's own
// resize/concat/pool glue draw from ws.
func (m *Model) SetWorkspace(ws *tensor.Workspace) {
	m.ws = ws
	m.entry.SetWorkspace(ws)
	m.down.SetWorkspace(ws)
	for _, b := range m.deep {
		b.SetWorkspace(ws)
	}
	m.head.SetWorkspace(ws)
	if !m.Cfg.NoDecoder {
		m.decLow.SetWorkspace(ws)
		m.decoder.SetWorkspace(ws)
	}
	m.classifier.SetWorkspace(ws)
}

// SetActivationTap implements Segmenter: every labelled activation in
// the network reports its training-mode outputs to tap.
func (m *Model) SetActivationTap(tap nn.ActivationTap) {
	m.entry.SetActivationTap(tap)
	m.down.SetActivationTap(tap)
	for _, b := range m.deep {
		b.SetActivationTap(tap)
	}
	m.head.SetActivationTap(tap)
	if !m.Cfg.NoDecoder {
		m.decLow.SetActivationTap(tap)
		m.decoder.SetActivationTap(tap)
	}
}

// New constructs the model with deterministic initialisation.
func New(cfg Config) *Model {
	cfg.validate()
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := cfg.Width
	m := &Model{Cfg: cfg}

	m.entry = nn.NewSequential(
		nn.NewConv2D(rng, "entry", 3, w, 3, tensor.ConvSpec{Stride: 2, Pad: 1}, false),
		nn.NewBatchNorm2D("entrybn", w),
		&nn.ReLU{Label: "entry.relu"},
	)
	m.down = newXBlock(rng, "down", w, 2*w, 2, 1)
	for i := 0; i < cfg.DeepBlocks; i++ {
		m.deep = append(m.deep, newXBlock(rng, fmt.Sprintf("deep%d", i), 2*w, 2*w, 1, 2))
	}
	m.head = newASPP(rng, 2*w, w, 2*w, cfg.AtrousRates, cfg.DropProb)
	if !cfg.NoDecoder {
		m.decLow = nn.NewSequential(
			nn.NewConv2D(rng, "dec.low", w, w/2, 1, tensor.ConvSpec{}, false),
			nn.NewBatchNorm2D("dec.lowbn", w/2),
			&nn.ReLU{Label: "dec.low.relu"},
		)
		m.decoder = nn.NewSequential(
			nn.NewConv2D(rng, "dec.fuse1", 2*w+w/2, 2*w, 3, tensor.ConvSpec{Pad: 1}, false),
			nn.NewBatchNorm2D("dec.fuse1bn", 2*w),
			&nn.ReLU{Label: "dec.fuse1.relu"},
			nn.NewConv2D(rng, "dec.fuse2", 2*w, 2*w, 3, tensor.ConvSpec{Pad: 1}, false),
			nn.NewBatchNorm2D("dec.fuse2bn", 2*w),
			&nn.ReLU{Label: "dec.fuse2.relu"},
		)
	}
	m.classifier = nn.NewConv2D(rng, "classifier", 2*w, cfg.Classes, 1, tensor.ConvSpec{}, true)

	for _, l := range []nn.Layer{m.entry, m.down} {
		m.params = append(m.params, l.Params()...)
	}
	for _, b := range m.deep {
		m.params = append(m.params, b.Params()...)
	}
	m.params = append(m.params, m.head.Params()...)
	if !cfg.NoDecoder {
		m.params = append(m.params, m.decLow.Params()...)
		m.params = append(m.params, m.decoder.Params()...)
	}
	m.params = append(m.params, m.classifier.Params()...)
	return m
}

// Params returns all trainable parameters in a deterministic order
// (identical across ranks, which gradient allreduce relies on).
func (m *Model) Params() []*nn.Param { return m.params }

// BatchNorms enumerates every batch-norm layer in a deterministic
// order (identical across ranks, which SyncBN relies on).
func (m *Model) BatchNorms() []*nn.BatchNorm2D {
	var out []*nn.BatchNorm2D
	out = append(out, m.entry.BatchNorms()...)
	out = append(out, m.down.BatchNorms()...)
	for _, b := range m.deep {
		out = append(out, b.BatchNorms()...)
	}
	out = append(out, m.head.BatchNorms()...)
	if !m.Cfg.NoDecoder {
		out = append(out, m.decLow.BatchNorms()...)
		out = append(out, m.decoder.BatchNorms()...)
	}
	return out
}

// ParamCount returns the number of trainable scalars.
func (m *Model) ParamCount() int { return nn.ParamCount(m.params) }

// ReseedDropout pins the ASPP head's dropout masks to the global step
// (see nn.Dropout2D.Reseed) so a checkpoint-restored replica draws the
// same masks the original run would have.
func (m *Model) ReseedDropout(step int64) { m.head.dropout.Reseed(step) }

// Forward computes per-pixel class logits [N, Classes, S, S] for an
// input batch [N, 3, S, S].
func (m *Model) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dim(2) != m.Cfg.InputSize || x.Dim(3) != m.Cfg.InputSize {
		panic(fmt.Sprintf("deeplab: input %v, configured for %d", x.Shape, m.Cfg.InputSize))
	}
	low := m.entry.Forward(x, train) // OS2
	m.lowFeat = low
	enc := m.down.Forward(low, train) // OS4
	for _, b := range m.deep {
		enc = b.Forward(enc, train)
	}
	enc = m.head.Forward(enc, train)

	if m.Cfg.NoDecoder {
		// DeepLab-v3: classify the ASPP output directly and
		// upsample 4× to the input resolution.
		logits := m.classifier.Forward(enc, train)
		return tensor.BilinearResizeWS(logits, m.Cfg.InputSize, m.Cfg.InputSize, m.ws)
	}

	// Decoder: upsample encoder output to OS2, fuse with reduced
	// low-level features, refine, classify, upsample to input size.
	os2 := m.Cfg.InputSize / 2
	up := tensor.BilinearResizeWS(enc, os2, os2, m.ws)
	m.lowC = up.Dim(1)
	lowRed := m.decLow.Forward(low, train)
	fused := nn.ConcatChannelsWS(m.ws, up, lowRed)
	fused = m.decoder.Forward(fused, train)
	logits := m.classifier.Forward(fused, train)
	return tensor.BilinearResizeWS(logits, m.Cfg.InputSize, m.Cfg.InputSize, m.ws)
}

// Backward propagates d(loss)/d(logits) through the whole graph,
// accumulating parameter gradients. The input gradient is discarded
// (images are not trainable).
func (m *Model) Backward(dlogits *tensor.Tensor) {
	os2 := m.Cfg.InputSize / 2
	os4 := m.Cfg.InputSize / 4

	if m.Cfg.NoDecoder {
		d := tensor.BilinearResizeBackwardWS(dlogits, os4, os4, m.ws)
		d = m.classifier.Backward(d)
		d = m.head.Backward(d)
		for i := len(m.deep) - 1; i >= 0; i-- {
			d = m.deep[i].Backward(d)
		}
		d = m.down.Backward(d)
		m.entry.Backward(d)
		m.lowFeat = nil
		return
	}

	d := tensor.BilinearResizeBackwardWS(dlogits, os2, os2, m.ws)
	d = m.classifier.Backward(d)
	d = m.decoder.Backward(d)
	sizes := [2]int{m.lowC, d.Dim(1) - m.lowC}
	parts := nn.SplitChannelsWS(d, sizes[:], m.ws)
	dUp, dLowRed := parts[0], parts[1]

	dLow := m.decLow.Backward(dLowRed)
	dEnc := tensor.BilinearResizeBackwardWS(dUp, os4, os4, m.ws)
	dEnc = m.head.Backward(dEnc)
	for i := len(m.deep) - 1; i >= 0; i-- {
		dEnc = m.deep[i].Backward(dEnc)
	}
	dLow.Add(m.down.Backward(dEnc))
	m.entry.Backward(dLow)
	m.lowFeat = nil
}

// Loss runs forward + softmax cross-entropy + backward for one batch,
// returning the loss and leaving gradients accumulated on Params.
func (m *Model) Loss(x *tensor.Tensor, labels []int32, ignore int32, train bool) float64 {
	logits := m.Forward(x, train)
	loss, dlogits := tensor.SoftmaxCrossEntropyWS(logits, labels, ignore, m.ws)
	if train {
		m.Backward(dlogits)
	}
	return loss
}

// Predict returns argmax labels for a batch.
func (m *Model) Predict(x *tensor.Tensor) []int32 {
	return tensor.ArgmaxClass(m.Forward(x, false))
}

// PredictInto is Predict writing labels into a caller-owned buffer of
// exactly N·H·W entries, keeping pooled evaluation allocation-free.
//
//seglint:hotpath pooled eval inference; 0-alloc with a warm workspace per TestEvalAllocBudget
func (m *Model) PredictInto(x *tensor.Tensor, out []int32) []int32 {
	return tensor.ArgmaxClassInto(m.Forward(x, false), out)
}
