package deeplab

import (
	"math/rand"

	"segscale/internal/nn"
	"segscale/internal/tensor"
)

// Segmenter is the interface both models (DeepLab-v3+ and the FCN
// baseline) expose to the trainer.
type Segmenter interface {
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	Backward(dlogits *tensor.Tensor)
	Params() []*nn.Param
	BatchNorms() []*nn.BatchNorm2D
	Loss(x *tensor.Tensor, labels []int32, ignore int32, train bool) float64
	Predict(x *tensor.Tensor) []int32
	// PredictInto is Predict writing into a caller-owned label buffer
	// of exactly N·H·W entries — with a workspace installed, the
	// pooled evaluation path allocates nothing per batch.
	PredictInto(x *tensor.Tensor, out []int32) []int32
	// ReseedDropout pins any dropout layers' mask streams to the
	// given global step, making them a pure function of (model seed,
	// step) — the property checkpoint-restart recovery needs.
	ReseedDropout(step int64)
	// SetWorkspace installs a tensor.Workspace arena all activations
	// and kernel scratch are drawn from. The trainer Resets it at each
	// step boundary; nil (the default) keeps plain heap allocation.
	SetWorkspace(ws *tensor.Workspace)
	// SetActivationTap routes every labelled activation's training-mode
	// outputs to tap (the model-health plane's per-layer statistics
	// hook). Nil (the default) disables observation.
	SetActivationTap(tap nn.ActivationTap)
}

// FCN is the no-atrous, no-ASPP, no-skip baseline: a plain strided
// encoder with a bilinear upsampling head. It shows what DeepLab's
// architectural machinery buys on the segmentation task.
type FCN struct {
	Cfg  Config
	net  *nn.Sequential
	head *nn.Sequential
	ws   *tensor.Workspace
}

// SetWorkspace implements Segmenter.
func (f *FCN) SetWorkspace(ws *tensor.Workspace) {
	f.ws = ws
	f.net.SetWorkspace(ws)
	f.head.SetWorkspace(ws)
}

// SetActivationTap implements Segmenter.
func (f *FCN) SetActivationTap(tap nn.ActivationTap) {
	f.net.SetActivationTap(tap)
	f.head.SetActivationTap(tap)
}

// NewFCN builds the baseline at a comparable parameter budget.
func NewFCN(cfg Config) *FCN {
	cfg.validate()
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := cfg.Width
	f := &FCN{Cfg: cfg}
	f.net = nn.NewSequential(
		nn.NewConv2D(rng, "fcn.c1", 3, w, 3, tensor.ConvSpec{Stride: 2, Pad: 1}, false),
		nn.NewBatchNorm2D("fcn.bn1", w),
		&nn.ReLU{Label: "fcn.c1.relu"},
		nn.NewConv2D(rng, "fcn.c2", w, 2*w, 3, tensor.ConvSpec{Stride: 2, Pad: 1}, false),
		nn.NewBatchNorm2D("fcn.bn2", 2*w),
		&nn.ReLU{Label: "fcn.c2.relu"},
		nn.NewConv2D(rng, "fcn.c3", 2*w, 2*w, 3, tensor.ConvSpec{Pad: 1}, false),
		nn.NewBatchNorm2D("fcn.bn3", 2*w),
		&nn.ReLU{Label: "fcn.c3.relu"},
		nn.NewConv2D(rng, "fcn.c4", 2*w, 2*w, 3, tensor.ConvSpec{Pad: 1}, false),
		nn.NewBatchNorm2D("fcn.bn4", 2*w),
		&nn.ReLU{Label: "fcn.c4.relu"},
	)
	f.head = nn.NewSequential(
		nn.NewConv2D(rng, "fcn.cls", 2*w, cfg.Classes, 1, tensor.ConvSpec{}, true),
		&nn.Upsample{OutH: cfg.InputSize, OutW: cfg.InputSize},
	)
	return f
}

func (f *FCN) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return f.head.Forward(f.net.Forward(x, train), train)
}

func (f *FCN) Backward(dlogits *tensor.Tensor) {
	f.net.Backward(f.head.Backward(dlogits))
}

func (f *FCN) Params() []*nn.Param {
	return append(f.net.Params(), f.head.Params()...)
}

func (f *FCN) BatchNorms() []*nn.BatchNorm2D {
	return append(f.net.BatchNorms(), f.head.BatchNorms()...)
}

func (f *FCN) Loss(x *tensor.Tensor, labels []int32, ignore int32, train bool) float64 {
	logits := f.Forward(x, train)
	loss, dlogits := tensor.SoftmaxCrossEntropyWS(logits, labels, ignore, f.ws)
	if train {
		f.Backward(dlogits)
	}
	return loss
}

// ReseedDropout implements Segmenter; the FCN has no dropout layers.
func (f *FCN) ReseedDropout(int64) {}

func (f *FCN) Predict(x *tensor.Tensor) []int32 {
	return tensor.ArgmaxClass(f.Forward(x, false))
}

// PredictInto is Predict writing into a caller-owned label buffer.
//
//seglint:hotpath pooled eval inference; 0-alloc with a warm workspace per TestEvalAllocBudget
func (f *FCN) PredictInto(x *tensor.Tensor, out []int32) []int32 {
	return tensor.ArgmaxClassInto(f.Forward(x, false), out)
}

var (
	_ Segmenter = (*Model)(nil)
	_ Segmenter = (*FCN)(nil)
)
