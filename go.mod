module segscale

go 1.22
