package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"segscale/internal/modelhealth"
)

// mkHealth builds a deterministic health ledger: `steps` steps × 2
// ranks × 2 layers of grad rows plus one act row per (step, rank).
// scale multiplies gradient norms (and so update ratios); nonfinite
// poisons one row per step when set.
func mkHealth(steps int, scale float64, nonfinite bool) *modelhealth.Ledger {
	l := &modelhealth.Ledger{Header: modelhealth.Header{HealthSchema: modelhealth.LedgerSchema, World: 2}}
	for s := int64(0); s < int64(steps); s++ {
		wobble := 1 + 0.02*float64(s%4)
		for r := 0; r < 2; r++ {
			l.Rows = append(l.Rows, modelhealth.Row{
				Step: s, Rank: r, Kind: "act", Layer: "entry.relu",
				Mean: 0.4 * wobble, Std: 0.7, DeadFrac: 0.3 * wobble,
			})
			for _, layer := range []string{"entry.conv", "head.conv"} {
				row := modelhealth.Row{
					Step: s, Rank: r, Kind: "grad", Layer: layer,
					GradL2: 0.5 * wobble * scale, WeightL2: 2,
					UpdRatio: 0.01 * wobble * scale,
				}
				if nonfinite && layer == "head.conv" && r == 0 {
					row.NonFinite = 1
				}
				l.Rows = append(l.Rows, row)
			}
		}
	}
	l.Header.Rows = len(l.Rows)
	l.Header.LastStep = int64(steps - 1)
	if nonfinite {
		l.Header.Alerts = steps
	}
	return l
}

// writeHealth serialises the ledger as header + row JSONL lines — the
// rows are already built in sorted order, so the bytes match what
// Plane.WriteLedger emits.
func writeHealth(t *testing.T, dir, name string, l *modelhealth.Ledger) string {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(l.Header); err != nil {
		t.Fatal(err)
	}
	for i := range l.Rows {
		if err := enc.Encode(&l.Rows[i]); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareIdenticalHealthPasses(t *testing.T) {
	dir := t.TempDir()
	a := writeHealth(t, dir, "a.jsonl", mkHealth(8, 1, false))
	b := writeHealth(t, dir, "b.jsonl", mkHealth(8, 1, false))
	var out bytes.Buffer
	code, err := run([]string{a, b}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("identical health ledgers exit %d\n%s", code, out.String())
	}
	s := out.String()
	for _, want := range []string{"health diff", "grad_l2", "upd_ratio", "dead_frac", "no regression"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestCompareHealthFlagsBlownGradients(t *testing.T) {
	dir := t.TempDir()
	base := writeHealth(t, dir, "base.jsonl", mkHealth(8, 1, false))
	cand := writeHealth(t, dir, "cand.jsonl", mkHealth(8, 5, false))
	var out bytes.Buffer
	code, err := run([]string{base, cand}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 || !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("5x gradient norms: code %d\n%s", code, out.String())
	}
}

// The gate is two-sided: collapsed gradients regress just like blown
// ones — an fp16 wire that flushes the signal to zero must not pass.
func TestCompareHealthFlagsCollapsedGradients(t *testing.T) {
	dir := t.TempDir()
	base := writeHealth(t, dir, "base.jsonl", mkHealth(8, 1, false))
	cand := writeHealth(t, dir, "cand.jsonl", mkHealth(8, 0.1, false))
	var out bytes.Buffer
	code, err := run([]string{base, cand}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 || !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("collapsed gradient norms: code %d\n%s", code, out.String())
	}
}

func TestCompareHealthNonFiniteIsHardRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeHealth(t, dir, "base.jsonl", mkHealth(8, 1, false))
	cand := writeHealth(t, dir, "cand.jsonl", mkHealth(8, 1, true))
	var out bytes.Buffer
	code, err := run([]string{base, cand}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if code != 1 || !strings.Contains(s, "HARD REGRESSION") {
		t.Fatalf("non-finite candidate: code %d\n%s", code, s)
	}
	// Both hard gates fire: non-finite elements and sentinel trips.
	if !strings.Contains(s, "non-finite") || !strings.Contains(s, "sentinel") {
		t.Fatalf("hard-gate reasons missing:\n%s", s)
	}
	// The reverse direction (candidate cleaned up) passes.
	out.Reset()
	code, err = run([]string{cand, base}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("recovered candidate flagged: code %d\n%s", code, out.String())
	}
}

func TestValidateHealthLedger(t *testing.T) {
	dir := t.TempDir()
	good := writeHealth(t, dir, "good.jsonl", mkHealth(2, 1, false))
	var out bytes.Buffer
	code, err := run([]string{"-validate", good}, &out)
	if err != nil || code != 0 {
		t.Fatalf("valid health ledger: code %d err %v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "health schema") {
		t.Fatalf("validate verdict did not name the health schema:\n%s", out.String())
	}

	// Break the row ordering: validation must fail.
	data := readFile(t, good)
	lines := strings.Split(strings.TrimSpace(data), "\n")
	lines[1], lines[len(lines)-1] = lines[len(lines)-1], lines[1]
	bad := filepath.Join(dir, "bad.jsonl")
	writeStr(t, bad, strings.Join(lines, "\n")+"\n")
	out.Reset()
	code, err = run([]string{"-validate", bad}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 || !strings.Contains(out.String(), "INVALID") {
		t.Fatalf("out-of-order health ledger: code %d\n%s", code, out.String())
	}
}

func TestMixedHealthAndAttributionRejected(t *testing.T) {
	dir := t.TempDir()
	health := writeHealth(t, dir, "h.jsonl", mkHealth(2, 1, false))
	attr := writeLedger(t, dir, "a.json", mkLedger(2, 1))
	if _, err := run([]string{health, attr}, &bytes.Buffer{}); err == nil {
		t.Fatal("mixed health/attribution compare accepted")
	}
}

func TestCompareHealthIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	base := writeHealth(t, dir, "base.jsonl", mkHealth(8, 1, false))
	cand := writeHealth(t, dir, "cand.jsonl", mkHealth(8, 1.5, false))
	var a, b bytes.Buffer
	if _, err := run([]string{base, cand}, &a); err != nil {
		t.Fatal(err)
	}
	if _, err := run([]string{base, cand}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same inputs produced different health reports")
	}
}
