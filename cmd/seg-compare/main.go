// Command seg-compare is the run-comparison regression gate: it diffs
// two runs' artifacts — step-time attribution ledgers (summit-sim
// -attr-out, dlv3-train -attr-out, a /debug/attribution scrape) or run
// manifests from results/runs/ — and exits nonzero when the candidate
// regresses against the baseline. The test is deterministic: given the
// same two files it always renders the same report and verdict, so it
// can gate CI.
//
// Usage:
//
//	seg-compare [-rel 0.05] [-z 3] [-min-abs 1e-4] baseline.json candidate.json
//	seg-compare -validate ledger.json
//
// For ledgers, every bucket's per-row samples are compared with a
// two-sample z-test on top of a relative-delta threshold: a bucket
// regresses only when it got slower by more than -rel, by more than
// -min-abs seconds, and the shift clears -z pooled standard errors —
// noise-sized wobbles pass, straggler-sized shifts fail. The report
// also names each run's most-blamed rank, so a failing diff points at
// who to go look at.
//
// -validate checks a single ledger's structural invariants (schema,
// rank bounds, non-negative buckets summing to each row's step wall)
// and exits nonzero on violation — the smoke tests' JSON-schema gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"segscale/internal/traceanalysis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("seg-compare: ")
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	os.Exit(code)
}

// run is the whole tool behind a testable seam. The int is the process
// exit code: 0 clean, 1 regression (or failed validation), and any
// returned error means usage or I/O trouble.
func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("seg-compare", flag.ContinueOnError)
	validate := fs.Bool("validate", false, "validate a single ledger file instead of diffing two")
	rel := fs.Float64("rel", 0.05, "relative worsening needed to flag a bucket")
	zThresh := fs.Float64("z", 3, "z-score the worsening must clear to count as significant")
	minAbs := fs.Float64("min-abs", 1e-4, "ignore bucket deltas smaller than this many seconds")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if *validate {
		if fs.NArg() != 1 {
			return 0, fmt.Errorf("usage: seg-compare -validate <ledger.json>")
		}
		return runValidate(fs.Arg(0), stdout)
	}
	if fs.NArg() != 2 {
		return 0, fmt.Errorf("usage: seg-compare [flags] <baseline.json> <candidate.json>")
	}
	base, err := load(fs.Arg(0))
	if err != nil {
		return 0, err
	}
	cand, err := load(fs.Arg(1))
	if err != nil {
		return 0, err
	}
	switch {
	case base.ledger != nil && cand.ledger != nil:
		return compareLedgers(stdout, base, cand, *rel, *zThresh, *minAbs), nil
	case base.manifest != nil && cand.manifest != nil:
		return compareManifests(stdout, base, cand, *rel), nil
	default:
		return 0, fmt.Errorf("cannot compare %s (%s) against %s (%s): mixed artifact kinds",
			base.path, base.kind(), cand.path, cand.kind())
	}
}

func runValidate(path string, stdout io.Writer) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	l, err := traceanalysis.ReadLedger(f)
	if err != nil {
		// Validation failures are the tool's verdict, not its malfunction.
		fmt.Fprintf(stdout, "INVALID %s: %v\n", path, err)
		return 1, nil
	}
	fmt.Fprintf(stdout, "OK %s: schema %d, source %s, %d ranks, %d rows, buckets sum to step walls within %g\n",
		path, l.Schema, l.Source, l.Ranks, len(l.Steps), traceanalysis.SumEpsilon)
	return 0, nil
}

// artifact is one loaded input file: exactly one of ledger/manifest is
// set.
type artifact struct {
	path     string
	ledger   *traceanalysis.Ledger
	manifest *manifest
}

func (a artifact) kind() string {
	if a.ledger != nil {
		return "ledger"
	}
	return "manifest"
}

// manifest mirrors the fields of obs.Manifest this tool diffs; decoded
// structurally so seg-compare can read manifests from other builds.
type manifest struct {
	Tool            string  `json:"tool"`
	GitRev          string  `json:"git_rev"`
	Seed            int64   `json:"seed"`
	ChaosSpec       string  `json:"chaos_spec"`
	SLO             float64 `json:"slo"`
	FinalEfficiency float64 `json:"final_efficiency"`
	Restarts        int     `json:"restarts"`
}

// load sniffs the artifact kind: manifests carry "tool", ledgers carry
// "schema" + "steps".
func load(path string) (artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return artifact{}, err
	}
	var probe struct {
		Tool   string `json:"tool"`
		Schema *int   `json:"schema"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return artifact{}, fmt.Errorf("%s: %w", path, err)
	}
	switch {
	case probe.Tool != "":
		var m manifest
		if err := json.Unmarshal(data, &m); err != nil {
			return artifact{}, fmt.Errorf("%s: %w", path, err)
		}
		return artifact{path: path, manifest: &m}, nil
	case probe.Schema != nil:
		var l traceanalysis.Ledger
		if err := json.Unmarshal(data, &l); err != nil {
			return artifact{}, fmt.Errorf("%s: %w", path, err)
		}
		if err := l.Validate(traceanalysis.SumEpsilon); err != nil {
			return artifact{}, fmt.Errorf("%s: %w", path, err)
		}
		return artifact{path: path, ledger: &l}, nil
	default:
		return artifact{}, fmt.Errorf("%s: neither a run manifest nor an attribution ledger", path)
	}
}

// stats is a sample set's mean and variance.
type stats struct {
	n        int
	mean, sv float64 // sv: sample variance
}

func summarize(xs []float64) stats {
	s := stats{n: len(xs)}
	if s.n == 0 {
		return s
	}
	for _, x := range xs {
		s.mean += x
	}
	s.mean /= float64(s.n)
	for _, x := range xs {
		s.sv += (x - s.mean) * (x - s.mean)
	}
	if s.n > 1 {
		s.sv /= float64(s.n - 1)
	}
	return s
}

// zScore is the two-sample z statistic for candidate mean minus
// baseline mean; zero-variance pairs with a real delta score +Inf (an
// exact shift of a deterministic quantity is maximally significant).
func zScore(b, c stats) float64 {
	d := c.mean - b.mean
	if d == 0 {
		return 0
	}
	se := math.Sqrt(b.sv/float64(b.n) + c.sv/float64(c.n))
	if se == 0 {
		return math.Inf(sign(d))
	}
	return d / se
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

func compareLedgers(w io.Writer, base, cand artifact, rel, zThresh, minAbs float64) int {
	b, c := base.ledger, cand.ledger
	fmt.Fprintf(w, "attribution diff: %s (%d rows) -> %s (%d rows)\n\n",
		base.path, len(b.Steps), cand.path, len(c.Steps))
	fmt.Fprintf(w, "%-20s %12s %12s %10s %8s %8s  %s\n",
		"bucket", "base mean", "cand mean", "delta", "rel", "z", "verdict")

	regressions := 0
	row := func(name string, bs, cs stats) {
		d := cs.mean - bs.mean
		relD := 0.0
		if bs.mean != 0 {
			relD = d / bs.mean
		} else if d != 0 {
			relD = math.Inf(sign(d))
		}
		z := zScore(bs, cs)
		verdict := "ok"
		switch {
		case d > minAbs && relD > rel && z > zThresh:
			verdict = "REGRESSION"
			regressions++
		case d < -minAbs && relD < -rel && z < -zThresh:
			verdict = "improved"
		}
		fmt.Fprintf(w, "%-20s %12.6f %12.6f %+10.6f %+7.1f%% %8.1f  %s\n",
			name, bs.mean, cs.mean, d, 100*relD, z, verdict)
	}
	for i, name := range traceanalysis.BucketNames {
		row(name, summarize(b.BucketSamples(i)), summarize(c.BucketSamples(i)))
	}
	row("step_wall", summarize(stepWalls(b)), summarize(stepWalls(c)))

	fmt.Fprintf(w, "\nblame: baseline %s, candidate %s\n", blameLine(b), blameLine(c))
	if regressions > 0 {
		fmt.Fprintf(w, "\nRESULT: %d bucket(s) regressed\n", regressions)
		return 1
	}
	fmt.Fprintf(w, "\nRESULT: no regression\n")
	return 0
}

func stepWalls(l *traceanalysis.Ledger) []float64 {
	out := make([]float64, 0, len(l.Steps))
	for _, s := range l.Steps {
		out = append(out, s.StepSec)
	}
	return out
}

// blameLine renders a ledger's most-blamed rank ("rank 2 (18/36
// rows)") or "no rank blamed".
func blameLine(l *traceanalysis.Ledger) string {
	counts := l.BlameCounts()
	best, bestN := -1, 0
	for r, n := range counts {
		if n > bestN {
			best, bestN = r, n
		}
	}
	if best < 0 {
		return "no rank blamed"
	}
	return fmt.Sprintf("rank %d blamed most (%d/%d rows)", best, bestN, len(l.Steps))
}

func compareManifests(w io.Writer, base, cand artifact, rel float64) int {
	b, c := base.manifest, cand.manifest
	fmt.Fprintf(w, "manifest diff: %s -> %s\n", base.path, cand.path)
	fmt.Fprintf(w, "  tool:       %s -> %s\n", b.Tool, c.Tool)
	fmt.Fprintf(w, "  git_rev:    %s -> %s\n", b.GitRev, c.GitRev)
	fmt.Fprintf(w, "  seed:       %d -> %d\n", b.Seed, c.Seed)
	fmt.Fprintf(w, "  chaos_spec: %q -> %q\n", b.ChaosSpec, c.ChaosSpec)
	fmt.Fprintf(w, "  restarts:   %d -> %d\n", b.Restarts, c.Restarts)
	fmt.Fprintf(w, "  efficiency: %.4f -> %.4f\n", b.FinalEfficiency, c.FinalEfficiency)
	if b.FinalEfficiency > 0 {
		drop := (b.FinalEfficiency - c.FinalEfficiency) / b.FinalEfficiency
		if drop > rel {
			fmt.Fprintf(w, "\nRESULT: efficiency dropped %.1f%% (threshold %.1f%%)\n", 100*drop, 100*rel)
			return 1
		}
	}
	if c.SLO > 0 && c.FinalEfficiency > 0 && c.FinalEfficiency < c.SLO && b.FinalEfficiency >= b.SLO {
		fmt.Fprintf(w, "\nRESULT: candidate fell below its SLO (%.3f < %.3f)\n", c.FinalEfficiency, c.SLO)
		return 1
	}
	fmt.Fprintf(w, "\nRESULT: no regression\n")
	return 0
}
