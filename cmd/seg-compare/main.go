// Command seg-compare is the run-comparison regression gate: it diffs
// two runs' artifacts — step-time attribution ledgers (summit-sim
// -attr-out, dlv3-train -attr-out, a /debug/attribution scrape), run
// manifests from results/runs/, or training-health ledgers (dlv3-train
// -health-out, a /debug/health scrape's backing plane) — and exits
// nonzero when the candidate regresses against the baseline. The test
// is deterministic: given the same two files it always renders the
// same report and verdict, so it can gate CI.
//
// Usage:
//
//	seg-compare [-rel 0.05] [-z 3] [-min-abs 1e-4] baseline.json candidate.json
//	seg-compare -validate ledger.json
//
// For attribution ledgers, every bucket's per-row samples are compared
// with a two-sample z-test on top of a relative-delta threshold: a
// bucket regresses only when it got slower by more than -rel, by more
// than -min-abs seconds, and the shift clears -z pooled standard
// errors — noise-sized wobbles pass, straggler-sized shifts fail. The
// report also names each run's most-blamed rank, so a failing diff
// points at who to go look at.
//
// For health ledgers the gate works on gradient-health distributions
// instead of time: per-run grad_l2 / upd_ratio / dead_frac samples are
// z-tested the same way (two-sided — a fp16 or hierarchical-allreduce
// candidate must neither blow up nor collapse gradients relative to
// the fp32/flat baseline), and any increase in non-finite elements or
// sentinel trips is a hard regression regardless of thresholds.
//
// -validate checks a single ledger's structural invariants — schema,
// rank bounds, non-negative buckets summing to each row's step wall
// (attribution) or (step, rank, inc, kind, layer) row order and value
// sanity (health) — and exits nonzero on violation: the smoke tests'
// JSON-schema gate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"segscale/internal/modelhealth"
	"segscale/internal/traceanalysis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("seg-compare: ")
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	os.Exit(code)
}

// run is the whole tool behind a testable seam. The int is the process
// exit code: 0 clean, 1 regression (or failed validation), and any
// returned error means usage or I/O trouble.
func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("seg-compare", flag.ContinueOnError)
	validate := fs.Bool("validate", false, "validate a single ledger file instead of diffing two")
	rel := fs.Float64("rel", 0.05, "relative worsening needed to flag a bucket")
	zThresh := fs.Float64("z", 3, "z-score the worsening must clear to count as significant")
	minAbs := fs.Float64("min-abs", 1e-4, "ignore bucket deltas smaller than this many seconds")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if *validate {
		if fs.NArg() != 1 {
			return 0, fmt.Errorf("usage: seg-compare -validate <ledger.json>")
		}
		return runValidate(fs.Arg(0), stdout)
	}
	if fs.NArg() != 2 {
		return 0, fmt.Errorf("usage: seg-compare [flags] <baseline.json> <candidate.json>")
	}
	base, err := load(fs.Arg(0))
	if err != nil {
		return 0, err
	}
	cand, err := load(fs.Arg(1))
	if err != nil {
		return 0, err
	}
	switch {
	case base.ledger != nil && cand.ledger != nil:
		return compareLedgers(stdout, base, cand, *rel, *zThresh, *minAbs), nil
	case base.health != nil && cand.health != nil:
		return compareHealth(stdout, base, cand, *rel, *zThresh), nil
	case base.manifest != nil && cand.manifest != nil:
		return compareManifests(stdout, base, cand, *rel), nil
	default:
		return 0, fmt.Errorf("cannot compare %s (%s) against %s (%s): mixed artifact kinds",
			base.path, base.kind(), cand.path, cand.kind())
	}
}

func runValidate(path string, stdout io.Writer) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if sniffHealth(data) {
		hl, err := modelhealth.ReadLedger(bytes.NewReader(data))
		if err == nil {
			err = hl.Validate()
		}
		if err != nil {
			// Validation failures are the tool's verdict, not its malfunction.
			fmt.Fprintf(stdout, "INVALID %s: %v\n", path, err)
			return 1, nil
		}
		fmt.Fprintf(stdout, "OK %s: health schema %d, world %d, %d rows through step %d, %d alert(s)\n",
			path, hl.Header.HealthSchema, hl.Header.World, len(hl.Rows), hl.Header.LastStep, hl.Header.Alerts)
		return 0, nil
	}
	l, err := traceanalysis.ReadLedger(bytes.NewReader(data))
	if err != nil {
		// Validation failures are the tool's verdict, not its malfunction.
		fmt.Fprintf(stdout, "INVALID %s: %v\n", path, err)
		return 1, nil
	}
	fmt.Fprintf(stdout, "OK %s: schema %d, source %s, %d ranks, %d rows, buckets sum to step walls within %g\n",
		path, l.Schema, l.Source, l.Ranks, len(l.Steps), traceanalysis.SumEpsilon)
	return 0, nil
}

// sniffHealth reports whether data's first JSON value carries a
// health_schema field — the health ledger's JSONL header. A Decoder
// reads only the first value, so the trailing row lines (invalid as a
// single JSON document) do not break the probe.
func sniffHealth(data []byte) bool {
	var probe struct {
		HealthSchema *int `json:"health_schema"`
	}
	if err := json.NewDecoder(bytes.NewReader(data)).Decode(&probe); err != nil {
		return false
	}
	return probe.HealthSchema != nil
}

// artifact is one loaded input file: exactly one of
// ledger/health/manifest is set.
type artifact struct {
	path     string
	ledger   *traceanalysis.Ledger
	health   *modelhealth.Ledger
	manifest *manifest
}

func (a artifact) kind() string {
	switch {
	case a.ledger != nil:
		return "ledger"
	case a.health != nil:
		return "health ledger"
	default:
		return "manifest"
	}
}

// manifest mirrors the fields of obs.Manifest this tool diffs; decoded
// structurally so seg-compare can read manifests from other builds.
type manifest struct {
	Tool            string  `json:"tool"`
	GitRev          string  `json:"git_rev"`
	Seed            int64   `json:"seed"`
	ChaosSpec       string  `json:"chaos_spec"`
	SLO             float64 `json:"slo"`
	FinalEfficiency float64 `json:"final_efficiency"`
	Restarts        int     `json:"restarts"`
}

// load sniffs the artifact kind: manifests carry "tool", attribution
// ledgers carry "schema", health ledgers open with a "health_schema"
// header line. The probe decodes only the first JSON value so JSONL
// health ledgers sniff the same way single-object artifacts do.
func load(path string) (artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return artifact{}, err
	}
	var probe struct {
		Tool         string `json:"tool"`
		Schema       *int   `json:"schema"`
		HealthSchema *int   `json:"health_schema"`
	}
	if err := json.NewDecoder(bytes.NewReader(data)).Decode(&probe); err != nil {
		return artifact{}, fmt.Errorf("%s: %w", path, err)
	}
	switch {
	case probe.HealthSchema != nil:
		hl, err := modelhealth.ReadLedger(bytes.NewReader(data))
		if err != nil {
			return artifact{}, fmt.Errorf("%s: %w", path, err)
		}
		if err := hl.Validate(); err != nil {
			return artifact{}, fmt.Errorf("%s: %w", path, err)
		}
		return artifact{path: path, health: hl}, nil
	case probe.Tool != "":
		var m manifest
		if err := json.Unmarshal(data, &m); err != nil {
			return artifact{}, fmt.Errorf("%s: %w", path, err)
		}
		return artifact{path: path, manifest: &m}, nil
	case probe.Schema != nil:
		var l traceanalysis.Ledger
		if err := json.Unmarshal(data, &l); err != nil {
			return artifact{}, fmt.Errorf("%s: %w", path, err)
		}
		if err := l.Validate(traceanalysis.SumEpsilon); err != nil {
			return artifact{}, fmt.Errorf("%s: %w", path, err)
		}
		return artifact{path: path, ledger: &l}, nil
	default:
		return artifact{}, fmt.Errorf("%s: not a run manifest, attribution ledger, or health ledger", path)
	}
}

// stats is a sample set's mean and variance.
type stats struct {
	n        int
	mean, sv float64 // sv: sample variance
}

func summarize(xs []float64) stats {
	s := stats{n: len(xs)}
	if s.n == 0 {
		return s
	}
	for _, x := range xs {
		s.mean += x
	}
	s.mean /= float64(s.n)
	for _, x := range xs {
		s.sv += (x - s.mean) * (x - s.mean)
	}
	if s.n > 1 {
		s.sv /= float64(s.n - 1)
	}
	return s
}

// zScore is the two-sample z statistic for candidate mean minus
// baseline mean; zero-variance pairs with a real delta score +Inf (an
// exact shift of a deterministic quantity is maximally significant).
func zScore(b, c stats) float64 {
	d := c.mean - b.mean
	if d == 0 {
		return 0
	}
	se := math.Sqrt(b.sv/float64(b.n) + c.sv/float64(c.n))
	if se == 0 {
		return math.Inf(sign(d))
	}
	return d / se
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

func compareLedgers(w io.Writer, base, cand artifact, rel, zThresh, minAbs float64) int {
	b, c := base.ledger, cand.ledger
	fmt.Fprintf(w, "attribution diff: %s (%d rows) -> %s (%d rows)\n\n",
		base.path, len(b.Steps), cand.path, len(c.Steps))
	fmt.Fprintf(w, "%-20s %12s %12s %10s %8s %8s  %s\n",
		"bucket", "base mean", "cand mean", "delta", "rel", "z", "verdict")

	regressions := 0
	row := func(name string, bs, cs stats) {
		d := cs.mean - bs.mean
		relD := 0.0
		if bs.mean != 0 {
			relD = d / bs.mean
		} else if d != 0 {
			relD = math.Inf(sign(d))
		}
		z := zScore(bs, cs)
		verdict := "ok"
		switch {
		case d > minAbs && relD > rel && z > zThresh:
			verdict = "REGRESSION"
			regressions++
		case d < -minAbs && relD < -rel && z < -zThresh:
			verdict = "improved"
		}
		fmt.Fprintf(w, "%-20s %12.6f %12.6f %+10.6f %+7.1f%% %8.1f  %s\n",
			name, bs.mean, cs.mean, d, 100*relD, z, verdict)
	}
	for i, name := range traceanalysis.BucketNames {
		row(name, summarize(b.BucketSamples(i)), summarize(c.BucketSamples(i)))
	}
	row("step_wall", summarize(stepWalls(b)), summarize(stepWalls(c)))

	fmt.Fprintf(w, "\nblame: baseline %s, candidate %s\n", blameLine(b), blameLine(c))
	if regressions > 0 {
		fmt.Fprintf(w, "\nRESULT: %d bucket(s) regressed\n", regressions)
		return 1
	}
	fmt.Fprintf(w, "\nRESULT: no regression\n")
	return 0
}

func stepWalls(l *traceanalysis.Ledger) []float64 {
	out := make([]float64, 0, len(l.Steps))
	for _, s := range l.Steps {
		out = append(out, s.StepSec)
	}
	return out
}

// blameLine renders a ledger's most-blamed rank ("rank 2 (18/36
// rows)") or "no rank blamed".
func blameLine(l *traceanalysis.Ledger) string {
	counts := l.BlameCounts()
	best, bestN := -1, 0
	for r, n := range counts {
		if n > bestN {
			best, bestN = r, n
		}
	}
	if best < 0 {
		return "no rank blamed"
	}
	return fmt.Sprintf("rank %d blamed most (%d/%d rows)", best, bestN, len(l.Steps))
}

// healthSamples pulls one metric's per-row samples out of a health
// ledger: grad rows feed grad_l2 and upd_ratio, act rows feed
// dead_frac.
func healthSamples(l *modelhealth.Ledger, kind string, field func(modelhealth.Row) float64) []float64 {
	out := make([]float64, 0, len(l.Rows))
	for _, r := range l.Rows {
		if r.Kind == kind {
			out = append(out, field(r))
		}
	}
	return out
}

func healthNonFinite(l *modelhealth.Ledger) int {
	n := 0
	for _, r := range l.Rows {
		n += r.NonFinite
	}
	return n
}

// compareHealth gates on gradient-health distributions. Unlike the
// attribution diff (where only slower is worse), the health gate is
// two-sided: a candidate whose gradient norms collapsed is as suspect
// as one whose norms exploded — either means the fp16 or hierarchical
// path is not computing the same optimisation trajectory. Non-finite
// elements and sentinel trips may not increase at all.
func compareHealth(w io.Writer, base, cand artifact, rel, zThresh float64) int {
	b, c := base.health, cand.health
	fmt.Fprintf(w, "health diff: %s (%d rows) -> %s (%d rows)\n\n",
		base.path, len(b.Rows), cand.path, len(c.Rows))
	fmt.Fprintf(w, "%-20s %12s %12s %10s %8s %8s  %s\n",
		"metric", "base mean", "cand mean", "delta", "rel", "z", "verdict")

	regressions := 0
	row := func(name string, bs, cs stats) {
		d := cs.mean - bs.mean
		relD := 0.0
		if bs.mean != 0 {
			relD = d / bs.mean
		} else if d != 0 {
			relD = math.Inf(sign(d))
		}
		z := zScore(bs, cs)
		verdict := "ok"
		if math.Abs(d) > 0 && math.Abs(relD) > rel && math.Abs(z) > zThresh {
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-20s %12.6f %12.6f %+10.6f %+7.1f%% %8.1f  %s\n",
			name, bs.mean, cs.mean, d, 100*relD, z, verdict)
	}
	gradL2 := func(r modelhealth.Row) float64 { return r.GradL2 }
	updRatio := func(r modelhealth.Row) float64 { return r.UpdRatio }
	deadFrac := func(r modelhealth.Row) float64 { return r.DeadFrac }
	row("grad_l2", summarize(healthSamples(b, "grad", gradL2)), summarize(healthSamples(c, "grad", gradL2)))
	row("upd_ratio", summarize(healthSamples(b, "grad", updRatio)), summarize(healthSamples(c, "grad", updRatio)))
	row("dead_frac", summarize(healthSamples(b, "act", deadFrac)), summarize(healthSamples(c, "act", deadFrac)))

	bNF, cNF := healthNonFinite(b), healthNonFinite(c)
	fmt.Fprintf(w, "\nnonfinite elements: %d -> %d\n", bNF, cNF)
	fmt.Fprintf(w, "sentinel trips:     %d -> %d\n", b.Header.Alerts, c.Header.Alerts)
	if cNF > bNF {
		fmt.Fprintf(w, "HARD REGRESSION: candidate introduced %d non-finite gradient/activation elements\n", cNF-bNF)
		regressions++
	}
	if c.Header.Alerts > b.Header.Alerts {
		fmt.Fprintf(w, "HARD REGRESSION: candidate tripped %d more sentinel(s) than baseline\n",
			c.Header.Alerts-b.Header.Alerts)
		regressions++
	}
	if regressions > 0 {
		fmt.Fprintf(w, "\nRESULT: %d health metric(s) regressed\n", regressions)
		return 1
	}
	fmt.Fprintf(w, "\nRESULT: no regression\n")
	return 0
}

func compareManifests(w io.Writer, base, cand artifact, rel float64) int {
	b, c := base.manifest, cand.manifest
	fmt.Fprintf(w, "manifest diff: %s -> %s\n", base.path, cand.path)
	fmt.Fprintf(w, "  tool:       %s -> %s\n", b.Tool, c.Tool)
	fmt.Fprintf(w, "  git_rev:    %s -> %s\n", b.GitRev, c.GitRev)
	fmt.Fprintf(w, "  seed:       %d -> %d\n", b.Seed, c.Seed)
	fmt.Fprintf(w, "  chaos_spec: %q -> %q\n", b.ChaosSpec, c.ChaosSpec)
	fmt.Fprintf(w, "  restarts:   %d -> %d\n", b.Restarts, c.Restarts)
	fmt.Fprintf(w, "  efficiency: %.4f -> %.4f\n", b.FinalEfficiency, c.FinalEfficiency)
	if b.FinalEfficiency > 0 {
		drop := (b.FinalEfficiency - c.FinalEfficiency) / b.FinalEfficiency
		if drop > rel {
			fmt.Fprintf(w, "\nRESULT: efficiency dropped %.1f%% (threshold %.1f%%)\n", 100*drop, 100*rel)
			return 1
		}
	}
	if c.SLO > 0 && c.FinalEfficiency > 0 && c.FinalEfficiency < c.SLO && b.FinalEfficiency >= b.SLO {
		fmt.Fprintf(w, "\nRESULT: candidate fell below its SLO (%.3f < %.3f)\n", c.FinalEfficiency, c.SLO)
		return 1
	}
	fmt.Fprintf(w, "\nRESULT: no regression\n")
	return 0
}
