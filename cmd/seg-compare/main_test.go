package main

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"segscale/internal/traceanalysis"
)

// writeLedger materialises a ledger file for the tool to read.
func writeLedger(t *testing.T, dir, name string, l *traceanalysis.Ledger) string {
	t.Helper()
	var buf bytes.Buffer
	if err := l.WriteLedger(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// mkLedger builds rows over `steps` steps × 2 ranks; slow scales rank
// compute and adds idle time blamed on rank 1, modelling a straggler.
func mkLedger(steps int, slow float64) *traceanalysis.Ledger {
	l := &traceanalysis.Ledger{Schema: traceanalysis.LedgerSchema, Source: "test", Ranks: 2}
	for s := 0; s < steps; s++ {
		// Deterministic per-step wobble so variances are nonzero.
		wobble := 1 + 0.01*float64(s%3)
		for r := 0; r < 2; r++ {
			var b traceanalysis.BucketSet
			b[traceanalysis.BucketForward] = 0.2 * wobble * slow
			b[traceanalysis.BucketBackward] = 0.4 * wobble * slow
			b[traceanalysis.BucketWire] = 0.003
			b[traceanalysis.BucketOverhead] = 0.01
			row := traceanalysis.StepAttribution{Step: s, Rank: r, BlameRank: -1}
			if r == 0 && slow > 1 {
				b[traceanalysis.BucketIdleWait] = 0.1 * wobble
				row.BlameRank = 1
				row.BlameEdge = "1>0#0.0"
			}
			row.Buckets = b
			row.StepSec = b.Sum()
			l.Steps = append(l.Steps, row)
		}
	}
	return l
}

func TestCompareIdenticalLedgersPasses(t *testing.T) {
	dir := t.TempDir()
	a := writeLedger(t, dir, "a.json", mkLedger(8, 1))
	b := writeLedger(t, dir, "b.json", mkLedger(8, 1))
	var out bytes.Buffer
	code, err := run([]string{a, b}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("identical ledgers exit %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "no regression") {
		t.Fatalf("output missing verdict:\n%s", out.String())
	}
}

func TestCompareFlagsStragglerRegression(t *testing.T) {
	dir := t.TempDir()
	base := writeLedger(t, dir, "base.json", mkLedger(8, 1))
	cand := writeLedger(t, dir, "cand.json", mkLedger(8, 1.5))
	var out bytes.Buffer
	code, err := run([]string{base, cand}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("straggler candidate exit %d, want 1\n%s", code, out.String())
	}
	s := out.String()
	for _, want := range []string{"REGRESSION", "idle_wait", "step_wall", "rank 1 blamed most"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestCompareIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	base := writeLedger(t, dir, "base.json", mkLedger(8, 1))
	cand := writeLedger(t, dir, "cand.json", mkLedger(8, 1.2))
	var a, b bytes.Buffer
	if _, err := run([]string{base, cand}, &a); err != nil {
		t.Fatal(err)
	}
	if _, err := run([]string{base, cand}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same inputs produced different reports")
	}
}

func TestValidateMode(t *testing.T) {
	dir := t.TempDir()
	good := writeLedger(t, dir, "good.json", mkLedger(2, 1))
	var out bytes.Buffer
	code, err := run([]string{"-validate", good}, &out)
	if err != nil || code != 0 {
		t.Fatalf("valid ledger: code %d err %v\n%s", code, err, out.String())
	}

	bad := filepath.Join(dir, "bad.json")
	broken := strings.Replace(readFile(t, good), `"step_sec": `, `"step_sec": 99`, 1)
	if err := os.WriteFile(bad, []byte(broken), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	code, err = run([]string{"-validate", bad}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 || !strings.Contains(out.String(), "INVALID") {
		t.Fatalf("sum-violating ledger: code %d\n%s", code, out.String())
	}
}

func TestCompareManifests(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")
	cand := filepath.Join(dir, "cand.json")
	writeStr(t, base, `{"tool":"summit-sim","git_rev":"aaa","seed":1,"slo":0.8,"final_efficiency":0.90}`)
	writeStr(t, cand, `{"tool":"summit-sim","git_rev":"bbb","seed":1,"slo":0.8,"final_efficiency":0.70}`)
	var out bytes.Buffer
	code, err := run([]string{base, cand}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 || !strings.Contains(out.String(), "efficiency dropped") {
		t.Fatalf("efficiency drop: code %d\n%s", code, out.String())
	}

	out.Reset()
	code, err = run([]string{base, base}, &out)
	if err != nil || code != 0 {
		t.Fatalf("self-compare: code %d err %v", code, err)
	}
}

func TestMixedArtifactsRejected(t *testing.T) {
	dir := t.TempDir()
	ledger := writeLedger(t, dir, "l.json", mkLedger(2, 1))
	man := filepath.Join(dir, "m.json")
	writeStr(t, man, `{"tool":"summit-sim","final_efficiency":0.9}`)
	if _, err := run([]string{ledger, man}, &bytes.Buffer{}); err == nil {
		t.Fatal("mixed ledger/manifest compare accepted")
	}
}

func readFile(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func writeStr(t *testing.T, path, s string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLoadAndUsageErrors(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer

	if _, err := run([]string{filepath.Join(dir, "nope.json")}, &out); err == nil {
		t.Error("single positional arg accepted without -validate")
	}
	if _, err := run([]string{"-validate", "a", "b"}, &out); err == nil {
		t.Error("-validate with two args accepted")
	}
	if _, err := run([]string{"-validate", filepath.Join(dir, "nope.json")}, &out); err == nil {
		t.Error("-validate on a missing file not an I/O error")
	}
	if _, err := load(filepath.Join(dir, "nope.json")); err == nil {
		t.Error("missing file loaded")
	}

	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := load(bad); err == nil {
		t.Error("malformed JSON loaded")
	}

	neither := filepath.Join(dir, "neither.json")
	os.WriteFile(neither, []byte("{}"), 0o644)
	if _, err := load(neither); err == nil || !strings.Contains(err.Error(), "not a run manifest") {
		t.Errorf("kind sniffing on {}: %v", err)
	}

	invalid := filepath.Join(dir, "invalid.json")
	os.WriteFile(invalid, []byte(`{"schema": 99, "source": "x", "ranks": 1, "steps": []}`), 0o644)
	if _, err := load(invalid); err == nil {
		t.Error("ledger failing Validate loaded")
	}
	good := writeLedger(t, dir, "good.json", mkLedger(2, 1))
	if _, err := run([]string{good, invalid}, &out); err == nil {
		t.Error("invalid candidate accepted")
	}
	if _, err := run([]string{invalid, good}, &out); err == nil {
		t.Error("invalid baseline accepted")
	}
}

func TestZScoreAndSign(t *testing.T) {
	if sign(-2) != -1 || sign(0) != 1 || sign(3) != 1 {
		t.Error("sign convention broken")
	}
	if z := zScore(stats{n: 3, mean: 1}, stats{n: 3, mean: 1}); z != 0 {
		t.Errorf("identical means z = %g, want 0", z)
	}
	if z := zScore(stats{n: 3, mean: 1}, stats{n: 3, mean: 2}); !math.IsInf(z, 1) {
		t.Errorf("zero-variance shift z = %g, want +Inf", z)
	}
	if z := zScore(stats{n: 3, mean: 2}, stats{n: 3, mean: 1}); !math.IsInf(z, -1) {
		t.Errorf("zero-variance drop z = %g, want -Inf", z)
	}
	b := summarize([]float64{1, 2, 3})
	if b.n != 3 || b.mean != 2 || b.sv != 1 {
		t.Errorf("summarize = %+v, want n=3 mean=2 sv=1", b)
	}
	if e := summarize(nil); e.n != 0 || e.mean != 0 {
		t.Errorf("empty summarize = %+v", e)
	}
}
