// Command trace-stats aggregates a Chrome trace (as written by
// summit-sim -timeline or real Horovod's HOROVOD_TIMELINE) into a
// per-phase time breakdown — the quick way to see where a step went.
//
// Usage:
//
//	trace-stats trace.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"segscale/internal/asciichart"
	"segscale/internal/timeline"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trace-stats: ")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: trace-stats <trace.json>")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	rec, err := timeline.ReadChromeTrace(f)
	if err != nil {
		log.Fatal(err)
	}
	br := rec.Breakdown()
	lo, hi := rec.Span()
	span := hi - lo
	if span <= 0 {
		log.Fatal("trace is empty")
	}

	phases := make([]string, 0, len(br))
	for ph := range br {
		phases = append(phases, ph)
	}
	sort.Slice(phases, func(i, j int) bool { return br[phases[i]] > br[phases[j]] })

	fmt.Printf("%d events over %.3f ms\n\n", len(rec.Events), span*1e3)
	var bars []asciichart.Bar
	for _, ph := range phases {
		bars = append(bars, asciichart.Bar{Label: ph, Value: br[ph] * 1e3})
	}
	fmt.Print(asciichart.HBar(bars, 40, "%.2f ms"))
	fmt.Printf("\n(lane-concurrent phases can sum past the %.3f ms span)\n", span*1e3)
}
