// Command trace-stats analyses a Chrome trace (as written by
// summit-sim -timeline, dlv3-train -trace, or real Horovod's
// HOROVOD_TIMELINE): per-phase time breakdown and duration
// histograms, the critical path through the step, and a straggler
// report over lanes.
//
// Usage:
//
//	trace-stats [-straggler-factor 1.2] [-path 12] trace.json
//	trace-stats -attr [-attr-out ledger.json] trace.json
//
// -attr switches to attribution mode: the trace's message edges are
// assembled into a cross-rank happens-before DAG, every rank's
// TRAIN_STEP windows are decomposed into the sum-to-100% attribution
// buckets, and the report names which rank each waiter was blocked on.
// -attr-out additionally writes the full ledger as canonical JSON, the
// input format of seg-compare.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"segscale/internal/asciichart"
	"segscale/internal/timeline"
	"segscale/internal/traceanalysis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("trace-stats: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the whole tool behind a testable seam: args are the
// command-line arguments (without the program name), output goes to
// stdout.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("trace-stats", flag.ContinueOnError)
	factor := fs.Float64("straggler-factor", 1.2,
		"flag lanes busier than this multiple of the median lane")
	pathMax := fs.Int("path", 12, "critical-path steps to print (0 = all)")
	attr := fs.Bool("attr", false, "attribution mode: decompose per-rank step windows via the happens-before DAG")
	attrOut := fs.String("attr-out", "", "with -attr, also write the ledger JSON here")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: trace-stats [flags] <trace.json>")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()

	rec, err := timeline.ReadChromeTrace(f)
	if err != nil {
		return err
	}
	if *attr {
		return runAttr(stdout, rec, *attrOut)
	}
	rep, err := traceanalysis.Analyze(rec, traceanalysis.Options{StragglerFactor: *factor})
	if err != nil {
		return err
	}
	render(stdout, rep, *pathMax)
	return nil
}

// runAttr renders the attribution view of a trace and optionally
// writes the ledger for seg-compare.
func runAttr(w io.Writer, rec *timeline.Recorder, outPath string) error {
	dag := traceanalysis.BuildDAG(rec)
	l, err := traceanalysis.AttributeTrace(rec, dag)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "happens-before DAG: %d events, %d lanes, %d message edges, %d orphan edges\n",
		len(dag.Events), len(dag.Lanes), dag.Stats.MessageEdges, dag.Stats.OrphanEdges())
	if o := dag.Stats; o.OrphanEdges() > 0 {
		fmt.Fprintf(w, "  (orphans: %d recvs without sends, %d unmatched sends, %d duplicate IDs, %d malformed)\n",
			o.OrphanRecvs, o.UnmatchedSends, o.DuplicateEdges, o.MalformedEdges)
	}
	fmt.Fprintf(w, "attribution ledger: %d ranks, %d rows\n\n", l.Ranks, len(l.Steps))

	fmt.Fprintln(w, "== mean step decomposition (sums to 100% of the step wall) ==")
	means := l.BucketMeans()
	wall := means.Sum()
	for i, name := range traceanalysis.BucketNames {
		pct := 0.0
		if wall > 0 {
			pct = 100 * means[i] / wall
		}
		fmt.Fprintf(w, "%-16s %10s %6.1f%%\n", name, ms(means[i]), pct)
	}
	fmt.Fprintf(w, "%-16s %10s\n\n", "step wall", ms(wall))

	fmt.Fprintln(w, "== blame ==")
	counts := l.BlameCounts()
	blamed := false
	for r, n := range counts {
		if n == 0 {
			continue
		}
		blamed = true
		fmt.Fprintf(w, "rank %d blamed in %d/%d rows\n", r, n, len(l.Steps))
	}
	if !blamed {
		fmt.Fprintln(w, "no idle waits attributable to a specific rank")
	}

	if outPath != "" {
		out, err := os.Create(outPath)
		if err != nil {
			return err
		}
		if err := l.WriteLedger(out); err != nil {
			out.Close()
			return err
		}
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nledger written to %s\n", outPath)
	}
	return nil
}

func render(w io.Writer, rep *traceanalysis.Report, pathMax int) {
	fmt.Fprintf(w, "%d events, %d lanes, %.3f ms span\n\n",
		rep.Events, len(rep.Lanes), rep.SpanSec*1e3)

	fmt.Fprintln(w, "== phase breakdown ==")
	var bars []asciichart.Bar
	for _, ph := range rep.Phases {
		bars = append(bars, asciichart.Bar{Label: ph.Phase, Value: ph.Total * 1e3})
	}
	fmt.Fprint(w, asciichart.HBar(bars, 40, "%.2f ms"))
	fmt.Fprintf(w, "(lane-concurrent phases can sum past the %.3f ms span)\n\n", rep.SpanSec*1e3)

	fmt.Fprintln(w, "== phase durations ==")
	fmt.Fprintf(w, "%-24s %6s %10s %10s %10s %10s  %s\n",
		"phase", "count", "mean", "p50", "p90", "max", "histogram")
	for _, ph := range rep.Phases {
		fmt.Fprintf(w, "%-24s %6d %10s %10s %10s %10s  %s\n",
			ph.Phase, ph.Count,
			ms(ph.Mean), ms(ph.P50), ms(ph.P90), ms(ph.Max), spark(ph.Hist))
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "== critical path (%.3f ms busy, %.1f%% of span) ==\n",
		rep.CriticalSec*1e3, 100*rep.CriticalSec/rep.SpanSec)
	steps := rep.CriticalPath
	elided := 0
	if pathMax > 0 && len(steps) > pathMax {
		elided = len(steps) - pathMax
		steps = steps[len(steps)-pathMax:]
	}
	if elided > 0 {
		fmt.Fprintf(w, "  ... %d earlier steps elided (-path 0 for all)\n", elided)
	}
	for _, st := range steps {
		e := st.Event
		if st.GapSec > 0 {
			fmt.Fprintf(w, "  (idle %s)\n", ms(st.GapSec))
		}
		fmt.Fprintf(w, "  %-10s %-24s %-20s %s\n", e.Lane, e.Phase, e.Name, ms(e.End-e.Start))
	}
	fmt.Fprintln(w)

	fmt.Fprintln(w, "== stragglers ==")
	if len(rep.Stragglers) == 0 {
		fmt.Fprintf(w, "none (no lane over %.3f ms median busy time by the threshold)\n",
			rep.MedianBusySec*1e3)
		return
	}
	for _, s := range rep.Stragglers {
		fmt.Fprintf(w, "%-10s busy %s = %.2fx the median lane\n", s.Lane, ms(s.BusySec), s.Ratio)
	}
}

// ms renders seconds as fixed-point milliseconds.
func ms(sec float64) string { return fmt.Sprintf("%.3fms", sec*1e3) }

// spark renders bucket counts as a unicode bar row.
func spark(hist []int) string {
	levels := []rune(" ▁▂▃▄▅▆▇█")
	max := 0
	for _, c := range hist {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return ""
	}
	var sb strings.Builder
	for _, c := range hist {
		i := c * (len(levels) - 1) / max
		if c > 0 && i == 0 {
			i = 1
		}
		sb.WriteRune(levels[i])
	}
	return strings.TrimRight(sb.String(), " ")
}
