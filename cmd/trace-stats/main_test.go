package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"segscale/internal/timeline"
	"segscale/internal/traceanalysis"
)

// writeTrace saves a recorder to a temp file and returns the path.
func writeTrace(t *testing.T, rec *timeline.Recorder) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteChromeTrace(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunGolden(t *testing.T) {
	// Two ranks: rank1 computes 3x slower, then both allreduce.
	// Lane names round-trip as tid0/tid1 through the Chrome format.
	rec := timeline.New()
	rec.Add("rank0", timeline.PhaseForward, "fwd", 0, 0.001)
	rec.Add("rank1", timeline.PhaseForward, "fwd", 0, 0.003)
	rec.Add("rank0", timeline.PhaseAllreduce, "buf0", 0.003, 0.004)
	rec.Add("rank1", timeline.PhaseAllreduce, "buf0", 0.003, 0.004)
	path := writeTrace(t, rec)

	var out strings.Builder
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()

	want := `4 events, 2 lanes, 4.000 ms span

== phase breakdown ==
FORWARD       |████████████████████████████████████████ 4.00 ms
MPI_ALLREDUCE |████████████████████                     2.00 ms
(lane-concurrent phases can sum past the 4.000 ms span)

== phase durations ==
phase                     count       mean        p50        p90        max  histogram
FORWARD                       2    2.000ms    2.000ms    2.800ms    3.000ms  █      █
MPI_ALLREDUCE                 2    1.000ms    1.000ms    1.000ms    1.000ms  █

== critical path (4.000 ms busy, 100.0% of span) ==
  tid1       FORWARD                  fwd                  3.000ms
  tid1       MPI_ALLREDUCE            buf0                 1.000ms

== stragglers ==
tid1       busy 4.000ms = 1.33x the median lane
`
	if got != want {
		t.Errorf("output mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestRunEmptyTrace(t *testing.T) {
	path := writeTrace(t, timeline.New())
	var out strings.Builder
	err := run([]string{path}, &out)
	if err == nil {
		t.Fatal("empty trace: want error")
	}
	if !strings.Contains(err.Error(), "no events") {
		t.Errorf("error = %v, want mention of no events", err)
	}
}

func TestRunMissingFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{filepath.Join(t.TempDir(), "nope.json")}, &out); err == nil {
		t.Fatal("missing file: want error")
	}
}

func TestRunUsage(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("no args: want usage error")
	}
}

func TestRunPathElision(t *testing.T) {
	rec := timeline.New()
	for i := 0; i < 6; i++ {
		lo := float64(i) * 0.001
		rec.Add("rank0", timeline.PhaseForward, "fwd", lo, lo+0.001)
	}
	path := writeTrace(t, rec)
	var out strings.Builder
	if err := run([]string{"-path", "2", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "4 earlier steps elided") {
		t.Errorf("output missing elision note:\n%s", out.String())
	}
}

// attrTrace builds a two-rank trace with one TRAIN_STEP window per
// rank, a paired message edge, and rank0 idling on rank1's send.
func attrTrace() *timeline.Recorder {
	rec := timeline.New()
	edge := timeline.Edge{Src: 1, Dst: 0, Seq: 0, Inc: 0}.String()
	rec.Add("rank0", timeline.PhaseStep, "step", 0, 10)
	rec.Add("rank0", timeline.PhaseForward, "fwd", 0, 3)
	rec.AddEdge("rank0", timeline.PhaseRecv, "recv", edge, 3, 9)
	rec.Add("rank0", timeline.PhaseAllreduce, "buf0", 9, 10)
	rec.Add("rank1", timeline.PhaseStep, "step", 0, 10)
	rec.Add("rank1", timeline.PhaseForward, "fwd", 0, 8)
	rec.AddEdge("rank1", timeline.PhaseSend, "send", edge, 8, 9)
	rec.Add("rank1", timeline.PhaseAllreduce, "buf0", 9, 10)
	return rec
}

func TestRunAttrMode(t *testing.T) {
	path := writeTrace(t, attrTrace())
	out := filepath.Join(t.TempDir(), "ledger.json")
	var buf strings.Builder
	if err := run([]string{"-attr", "-attr-out", out, path}, &buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		"happens-before DAG:", "1 message edges",
		"attribution ledger: 2 ranks, 2 rows",
		"== mean step decomposition",
		"idle_wait",
		"rank 1 blamed in 1/2 rows",
		"ledger written to " + out,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("attr output missing %q:\n%s", want, s)
		}
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	l, err := traceanalysis.ReadLedger(f)
	if err != nil {
		t.Fatalf("written ledger invalid: %v", err)
	}
	if l.Ranks != 2 || len(l.Steps) != 2 {
		t.Fatalf("ledger shape: ranks %d rows %d", l.Ranks, len(l.Steps))
	}
}

func TestRunAttrNoBlame(t *testing.T) {
	// No message edges and no idle: the blame section must say so.
	rec := timeline.New()
	rec.Add("rank0", timeline.PhaseStep, "step", 0, 2)
	rec.Add("rank0", timeline.PhaseForward, "fwd", 0, 2)
	path := writeTrace(t, rec)
	var buf strings.Builder
	if err := run([]string{"-attr", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no idle waits attributable") {
		t.Errorf("output missing no-blame line:\n%s", buf.String())
	}
}

func TestRunAttrNoStepWindows(t *testing.T) {
	rec := timeline.New()
	rec.Add("rank0", timeline.PhaseForward, "fwd", 0, 1)
	path := writeTrace(t, rec)
	var buf strings.Builder
	if err := run([]string{"-attr", path}, &buf); err == nil {
		t.Fatal("trace without TRAIN_STEP windows: want error")
	}
}

func TestRunAttrOrphanReport(t *testing.T) {
	// A recv with no matching send must be reported, not fatal.
	rec := timeline.New()
	rec.Add("rank0", timeline.PhaseStep, "step", 0, 2)
	rec.AddEdge("rank0", timeline.PhaseRecv, "recv", "1>0#5.0", 0, 1)
	path := writeTrace(t, rec)
	var buf strings.Builder
	if err := run([]string{"-attr", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1 recvs without sends") {
		t.Errorf("output missing orphan breakdown:\n%s", buf.String())
	}
}
