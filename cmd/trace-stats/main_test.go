package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"segscale/internal/timeline"
)

// writeTrace saves a recorder to a temp file and returns the path.
func writeTrace(t *testing.T, rec *timeline.Recorder) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteChromeTrace(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunGolden(t *testing.T) {
	// Two ranks: rank1 computes 3x slower, then both allreduce.
	// Lane names round-trip as tid0/tid1 through the Chrome format.
	rec := timeline.New()
	rec.Add("rank0", timeline.PhaseForward, "fwd", 0, 0.001)
	rec.Add("rank1", timeline.PhaseForward, "fwd", 0, 0.003)
	rec.Add("rank0", timeline.PhaseAllreduce, "buf0", 0.003, 0.004)
	rec.Add("rank1", timeline.PhaseAllreduce, "buf0", 0.003, 0.004)
	path := writeTrace(t, rec)

	var out strings.Builder
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()

	want := `4 events, 2 lanes, 4.000 ms span

== phase breakdown ==
FORWARD       |████████████████████████████████████████ 4.00 ms
MPI_ALLREDUCE |████████████████████                     2.00 ms
(lane-concurrent phases can sum past the 4.000 ms span)

== phase durations ==
phase                     count       mean        p50        p90        max  histogram
FORWARD                       2    2.000ms    2.000ms    2.800ms    3.000ms  █      █
MPI_ALLREDUCE                 2    1.000ms    1.000ms    1.000ms    1.000ms  █

== critical path (4.000 ms busy, 100.0% of span) ==
  tid1       FORWARD                  fwd                  3.000ms
  tid1       MPI_ALLREDUCE            buf0                 1.000ms

== stragglers ==
tid1       busy 4.000ms = 1.33x the median lane
`
	if got != want {
		t.Errorf("output mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestRunEmptyTrace(t *testing.T) {
	path := writeTrace(t, timeline.New())
	var out strings.Builder
	err := run([]string{path}, &out)
	if err == nil {
		t.Fatal("empty trace: want error")
	}
	if !strings.Contains(err.Error(), "no events") {
		t.Errorf("error = %v, want mention of no events", err)
	}
}

func TestRunMissingFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{filepath.Join(t.TempDir(), "nope.json")}, &out); err == nil {
		t.Fatal("missing file: want error")
	}
}

func TestRunUsage(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("no args: want usage error")
	}
}

func TestRunPathElision(t *testing.T) {
	rec := timeline.New()
	for i := 0; i < 6; i++ {
		lo := float64(i) * 0.001
		rec.Add("rank0", timeline.PhaseForward, "fwd", lo, lo+0.001)
	}
	path := writeTrace(t, rec)
	var out strings.Builder
	if err := run([]string{"-path", "2", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "4 earlier steps elided") {
		t.Errorf("output missing elision note:\n%s", out.String())
	}
}
