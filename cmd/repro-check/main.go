// Command repro-check is the reproduction's self-test: it reruns the
// headline experiments and grades each against the band the paper's
// abstract implies, printing PASS/FAIL rows and exiting non-zero on
// any failure. CI for the science, not just the code.
//
// Usage:
//
//	repro-check [-seed 1] [-accuracy] (accuracy adds ~20 s of real training)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"segscale/internal/train"
	"segscale/pkg/summitseg"
)

type check struct {
	name   string
	detail string
	pass   bool
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("repro-check: ")
	seed := flag.Int64("seed", 1, "simulation seed")
	accuracy := flag.Bool("accuracy", false, "include the real-training accuracy check (~20 s)")
	flag.Parse()

	var checks []check
	add := func(name string, pass bool, format string, args ...any) {
		checks = append(checks, check{name: name, detail: fmt.Sprintf(format, args...), pass: pass})
	}

	prof, err := summitseg.ModelByName("dlv3plus")
	if err != nil {
		log.Fatal(err)
	}
	rn, err := summitseg.ModelByName("resnet50")
	if err != nil {
		log.Fatal(err)
	}
	spectrum, _ := summitseg.MPIByName("spectrum")
	mv2, _ := summitseg.MPIByName("mv2gdr")

	sim := func(gpus int, m *summitseg.ModelProfile, mpi *summitseg.MPIProfile, hvd summitseg.HorovodConfig) *summitseg.SimResult {
		r, err := summitseg.Simulate(summitseg.SimOptions{GPUs: gpus, Model: m, MPI: mpi, Horovod: hvd, Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	// 1. Single-GPU anchors (paper: 6.7 and 300 img/s).
	dl1 := sim(1, prof, mv2, summitseg.TunedHorovod())
	add("single-GPU DLv3+ ≈ 6.7 img/s", within(dl1.ImgPerSec, 6.7, 0.05), "%.2f img/s", dl1.ImgPerSec)
	rn1 := sim(1, rn, mv2, summitseg.TunedHorovod())
	add("single-GPU ResNet-50 ≈ 300 img/s", within(rn1.ImgPerSec, 300, 0.05), "%.1f img/s", rn1.ImgPerSec)

	// 2. Headline scaling numbers at 132 GPUs.
	tuned := sim(132, prof, mv2, summitseg.TunedHorovod())
	def := sim(132, prof, spectrum, summitseg.DefaultHorovod())
	defBase := sim(1, prof, spectrum, summitseg.DefaultHorovod())
	effT := tuned.EfficiencyVs(dl1)
	effD := def.EfficiencyVs(defBase)
	add("tuned efficiency ≈ 92 % (paper band 88–97 %)", effT > 0.88 && effT < 0.97, "%.1f%%", 100*effT)
	add("default efficiency poor (62–82 %)", effD > 0.62 && effD < 0.82, "%.1f%%", 100*effD)
	improvement := effT / effD
	add("efficiency improvement ≈ +23.9 % (band +12–45 %)", improvement > 1.12 && improvement < 1.45, "%+.1f%%", 100*(improvement-1))
	speedup := tuned.ImgPerSec / def.ImgPerSec
	add("training speedup ≈ 1.3× (band 1.12–1.45×)", speedup > 1.12 && speedup < 1.45, "%.2f×", speedup)

	// 3. Microbenchmark ordering.
	rowsS, _ := summitseg.AllreduceLatency(spectrum, 22, []int{4, 1 << 20, 64 << 20})
	rowsM, _ := summitseg.AllreduceLatency(mv2, 22, []int{4, 1 << 20, 64 << 20})
	micro := true
	for i := range rowsS {
		micro = micro && rowsM[i].LatencyUS < rowsS[i].LatencyUS
	}
	add("MVAPICH2-GDR wins every allreduce size", micro, "3/3 sizes")

	// 4. Accuracy parity (optional: real training).
	if *accuracy {
		single := train.DefaultConfig()
		single.Epochs = 12
		single.TrainSize = 48
		single.Seed = *seed
		dist := single
		dist.World = 4
		dist.BatchPerRank = 1
		dist.ScaleLRByWorld = false
		rs, err := train.Run(single)
		if err != nil {
			log.Fatal(err)
		}
		// Strong scaling at the same effective batch.
		single4 := single
		single4.BatchPerRank = 4
		rs4, err := train.Run(single4)
		if err != nil {
			log.Fatal(err)
		}
		rd, err := train.Run(dist)
		if err != nil {
			log.Fatal(err)
		}
		gap := rd.FinalMIOU - rs4.FinalMIOU
		add("strong-scaling accuracy parity (|gap| ≤ 0.15)", gap > -0.15 && gap < 0.15,
			"single %.1f%%, distributed %.1f%%", 100*rs4.FinalMIOU, 100*rd.FinalMIOU)
		add("training learns at all", rs.FinalMIOU > rs.History[0].MIOU, "%.1f%% final", 100*rs.FinalMIOU)
	}

	failed := 0
	fmt.Printf("%-52s %-6s %s\n", "CHECK (paper claim)", "STATUS", "measured")
	for _, c := range checks {
		status := "PASS"
		if !c.pass {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%-52s %-6s %s\n", c.name, status, c.detail)
	}
	if failed > 0 {
		fmt.Printf("\n%d of %d checks failed\n", failed, len(checks))
		os.Exit(1)
	}
	fmt.Printf("\nall %d checks pass — the reproduction tracks the paper\n", len(checks))
}

func within(got, want, tol float64) bool {
	d := got/want - 1
	if d < 0 {
		d = -d
	}
	return d <= tol
}
