// Command dlv3-train runs *real* distributed data-parallel training
// of the scaled-down DeepLab-v3+ on the synthetic VOC-21 dataset:
// in-process ranks, real gradients, real allreduce, synchronized
// batch norm — the accuracy half of the reproduction.
//
// Usage:
//
//	dlv3-train [-world 4] [-epochs 20] [-batch 4] [-arch deeplab]
//	           [-train 64] [-eval 16] [-lr 0.05] [-strong] [-seed 1]
//	           [-trace trace.json] [-prom metrics.prom]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"time"

	"segscale/internal/segdata"
	"segscale/pkg/summitseg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dlv3-train: ")

	cfg := summitseg.DefaultTraining()
	flag.IntVar(&cfg.World, "world", cfg.World, "data-parallel ranks")
	flag.IntVar(&cfg.Epochs, "epochs", 20, "training epochs")
	flag.IntVar(&cfg.BatchPerRank, "batch", cfg.BatchPerRank, "images per rank per step")
	flag.StringVar(&cfg.Arch, "arch", cfg.Arch, "architecture: deeplab or fcn")
	flag.IntVar(&cfg.TrainSize, "train", 64, "training-set size")
	flag.IntVar(&cfg.EvalSize, "eval", cfg.EvalSize, "eval-set size")
	flag.Float64Var(&cfg.BaseLR, "lr", cfg.BaseLR, "base learning rate")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "data/init seed")
	flag.StringVar(&cfg.Optimizer, "opt", cfg.Optimizer, "optimizer: sgd or lars")
	flag.Float64Var(&cfg.GradClip, "clip", 0, "global gradient-norm clip (0 = off)")
	flag.StringVar(&cfg.CheckpointPath, "ckpt", "", "checkpoint file written each epoch")
	flag.StringVar(&cfg.ResumeFrom, "resume", "", "checkpoint file to resume from")
	flag.IntVar(&cfg.MaxRestarts, "max-restarts", 2, "checkpoint-restart budget after rank failures")
	chaosSeed := flag.Int64("chaos-seed", 0, "derive a recoverable chaos plan (message faults + straggler) from this seed (0 = off)")
	chaosSpec := flag.String("chaos-plan", "", `explicit chaos-plan spec, e.g. "seed=7;drop=0.01;crash=1@40" (overrides -chaos-seed)`)
	strong := flag.Bool("strong", false, "strong scaling: keep effective batch fixed (disables LR scaling)")
	noSync := flag.Bool("no-syncbn", false, "disable synchronized batch norm")
	traceOut := flag.String("trace", "", "write a per-rank Chrome trace (step-counter time base) to this file")
	promOut := flag.String("prom", "", "write per-rank training metrics to this file in Prometheus text format")
	flag.Parse()

	if *strong {
		cfg.ScaleLRByWorld = false
	}
	if *noSync {
		cfg.SyncBN = false
	}
	if *traceOut != "" || *promOut != "" {
		cfg.Telemetry = summitseg.NewTelemetry()
	}
	switch {
	case *chaosSpec != "":
		plan, err := summitseg.ParseChaosSpec(*chaosSpec)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Chaos = plan
	case *chaosSeed != 0:
		cfg.Chaos = summitseg.RandomChaosPlan(*chaosSeed, cfg.World)
	}

	fmt.Printf("training %s: world=%d batch/rank=%d effective=%d syncbn=%v lr-scaling=%v\n",
		cfg.Arch, cfg.World, cfg.BatchPerRank, cfg.World*cfg.BatchPerRank, cfg.SyncBN, cfg.ScaleLRByWorld)
	if cfg.Chaos != nil {
		fmt.Printf("chaos armed: %s\n", cfg.Chaos)
	}

	start := time.Now()
	res, err := summitseg.Train(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %10s %8s %8s %8s\n", "epoch", "loss", "mIOU", "pixAcc", "lr")
	for _, e := range res.History {
		fmt.Printf("%-6d %10.4f %7.2f%% %7.2f%% %8.4f\n",
			e.Epoch, e.Loss, 100*e.MIOU, 100*e.PixelAcc, e.LR)
	}
	fmt.Printf("final mIOU %.2f%% (fwIOU %.2f%%, pixel accuracy %.2f%%, best %.2f%% @epoch %d) in %s\n",
		100*res.FinalMIOU, 100*res.FinalFwIOU, 100*res.FinalAcc,
		100*res.BestMIOU, res.BestEpoch, time.Since(start).Round(time.Millisecond))
	if res.Restarts > 0 {
		fmt.Printf("recovered from %d rank failure(s) via checkpoint restart\n", res.Restarts)
	}

	fmt.Println("\nper-class IOU (eval set):")
	for k, iou := range res.FinalPerClassIOU {
		if math.IsNaN(iou) {
			continue // class absent from the eval set
		}
		fmt.Printf("  %-14s %6.2f%%\n", segdata.ClassNames[k], 100*iou)
	}

	if *traceOut != "" {
		if err := writeTo(*traceOut, cfg.Telemetry.WriteChromeTrace); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}
	if *promOut != "" {
		if err := writeTo(*promOut, cfg.Telemetry.WritePrometheus); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("metrics written to %s\n", *promOut)
	}
}

// writeTo creates path and streams one exporter into it.
func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
