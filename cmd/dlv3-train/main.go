// Command dlv3-train runs *real* distributed data-parallel training
// of the scaled-down DeepLab-v3+ on the synthetic VOC-21 dataset:
// in-process ranks, real gradients, real allreduce, synchronized
// batch norm — the accuracy half of the reproduction.
//
// Usage:
//
//	dlv3-train [-world 4] [-epochs 20] [-batch 4] [-arch deeplab]
//	           [-train 64] [-eval 16] [-lr 0.05] [-strong] [-seed 1]
//	           [-elastic] [-rejoin-epoch 5]
//	           [-trace trace.json] [-prom metrics.prom]
//	           [-obs-addr 127.0.0.1:6060] [-flight flight.json]
//	           [-slo 0.92] [-runs-dir results/runs] [-attr-out ledger.json]
//	           [-health] [-health-out health.jsonl]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"sync"
	"time"

	"segscale/internal/segdata"
	"segscale/pkg/summitseg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dlv3-train: ")

	cfg := summitseg.DefaultTraining()
	flag.IntVar(&cfg.World, "world", cfg.World, "data-parallel ranks")
	flag.IntVar(&cfg.Epochs, "epochs", 20, "training epochs")
	flag.IntVar(&cfg.BatchPerRank, "batch", cfg.BatchPerRank, "images per rank per step")
	flag.StringVar(&cfg.Arch, "arch", cfg.Arch, "architecture: deeplab or fcn")
	flag.IntVar(&cfg.TrainSize, "train", 64, "training-set size")
	flag.IntVar(&cfg.EvalSize, "eval", cfg.EvalSize, "eval-set size")
	flag.Float64Var(&cfg.BaseLR, "lr", cfg.BaseLR, "base learning rate")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "data/init seed")
	flag.StringVar(&cfg.Optimizer, "opt", cfg.Optimizer, "optimizer: sgd or lars")
	flag.Float64Var(&cfg.GradClip, "clip", 0, "global gradient-norm clip (0 = off)")
	flag.StringVar(&cfg.CheckpointPath, "ckpt", "", "checkpoint file written each epoch")
	flag.StringVar(&cfg.ResumeFrom, "resume", "", "checkpoint file to resume from")
	flag.IntVar(&cfg.MaxRestarts, "max-restarts", 2, "checkpoint-restart budget after rank failures (with -elastic: shrink budget)")
	flag.BoolVar(&cfg.Elastic, "elastic", false, "elastic membership: a failed rank shrinks the world in place and the survivors continue, no checkpoint restart")
	flag.IntVar(&cfg.RejoinEpoch, "rejoin-epoch", 0, "with -elastic, regrow dead ranks back into the world at this epoch boundary (0 = never)")
	chaosSeed := flag.Int64("chaos-seed", 0, "derive a recoverable chaos plan (message faults + straggler) from this seed (0 = off)")
	chaosSpec := flag.String("chaos-plan", "", `explicit chaos-plan spec, e.g. "seed=7;drop=0.01;crash=1@40" (overrides -chaos-seed)`)
	fp16 := flag.Bool("fp16", false, "mixed precision: binary16 gradient allreduce with fp32 master weights and dynamic loss scaling")
	lossScale := flag.Float64("loss-scale", 0, "with -fp16, initial loss scale (power of two; 0 = default 1024)")
	strong := flag.Bool("strong", false, "strong scaling: keep effective batch fixed (disables LR scaling)")
	noSync := flag.Bool("no-syncbn", false, "disable synchronized batch norm")
	traceOut := flag.String("trace", "", "write a per-rank Chrome trace (step-counter time base) to this file")
	promOut := flag.String("prom", "", "write per-rank training metrics to this file in Prometheus text format")
	promEvery := flag.Int("prom-every", 25, "with -prom, also re-export every N steps (atomic rename; 0 = final write only)")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /healthz, /readyz, /debug/flight and /debug/pprof on this address (e.g. 127.0.0.1:6060; empty = off)")
	flightOut := flag.String("flight", "", "keep an always-on flight recorder and dump its window (Chrome trace) to this file at exit, on SIGQUIT, and on each rank-failure recovery")
	slo := flag.Float64("slo", summitseg.DefaultSLO, "scaling-efficiency objective for the online monitor")
	runsDir := flag.String("runs-dir", "", "write a run manifest (config, seed, chaos, final efficiency, alerts) under this directory (empty = off)")
	attrOut := flag.String("attr-out", "", "decompose each rank's recorded step spans into the attribution ledger and write it to this file (seg-compare's input)")
	healthOn := flag.Bool("health", false, "collect the training-health plane: per-layer gradient/activation statistics with divergence sentinels (served on /debug/health when -obs-addr is set)")
	healthOut := flag.String("health-out", "", "write the per-run health ledger (deterministic JSONL, seg-compare's input) to this file; implies -health")
	healthEvery := flag.Int("health-every", 1, "with -health, collect statistics every N-th step")
	flag.Parse()

	if *fp16 {
		summitseg.EnableMixedPrecision(&cfg, *lossScale)
	}
	if *strong {
		cfg.ScaleLRByWorld = false
	}
	if *noSync {
		cfg.SyncBN = false
	}
	obsOn := *obsAddr != "" || *flightOut != "" || *runsDir != ""
	if *traceOut != "" || *promOut != "" || *attrOut != "" || obsOn {
		cfg.Telemetry = summitseg.NewTelemetry()
	}
	switch {
	case *chaosSpec != "":
		plan, err := summitseg.ParseChaosSpec(*chaosSpec)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Chaos = plan
	case *chaosSeed != 0:
		cfg.Chaos = summitseg.RandomChaosPlan(*chaosSeed, cfg.World)
	}

	fmt.Printf("training %s: world=%d batch/rank=%d effective=%d syncbn=%v lr-scaling=%v\n",
		cfg.Arch, cfg.World, cfg.BatchPerRank, cfg.World*cfg.BatchPerRank, cfg.SyncBN, cfg.ScaleLRByWorld)
	if cfg.Chaos != nil {
		fmt.Printf("chaos armed: %s\n", cfg.Chaos)
	}

	// Live observability plane — strictly an observer: everything below
	// hangs off nil-safe hooks and leaves the training computation
	// untouched.
	var (
		mon     *summitseg.EffMonitor
		flight  *summitseg.FlightRecorder
		srv     *summitseg.ObsServer
		flusher *summitseg.PromFlusher
	)
	if obsOn {
		flight = cfg.Telemetry.EnableFlight(0)
		mon = summitseg.NewEffMonitor(cfg.Telemetry, summitseg.MonitorConfig{SLO: *slo})
	}
	// Training-health plane: a pure observer of the train step. A
	// sentinel trip is routed into the efficiency monitor's alert log
	// and (once per run, while the window still shows the divergence)
	// dumps the flight recorder naming the offending layer/rank/step.
	var health *summitseg.HealthPlane
	if *healthOn || *healthOut != "" {
		healthDump := ""
		if *flightOut != "" {
			healthDump = *flightOut + ".health"
		}
		var dumpOnce sync.Once
		health = summitseg.NewHealthPlane(summitseg.HealthConfig{
			Every: *healthEvery,
			OnAlert: func(a summitseg.HealthAlert) {
				mon.Report(summitseg.ObsAlert{
					Kind: "health_" + a.Kind, Lane: fmt.Sprintf("rank%d", a.Rank),
					Value: a.Value, Threshold: a.Threshold, Msg: a.Msg,
				})
				dumpOnce.Do(func() {
					log.Printf("health alert: %s", a.Msg)
					if healthDump == "" {
						return
					}
					if err := summitseg.WriteFlightTrace(flight, healthDump); err != nil {
						log.Printf("flight: %v", err)
					} else {
						fmt.Printf("flight: divergence window written to %s\n", healthDump)
					}
				})
			},
		})
		cfg.Health = health
	}
	if *promOut != "" && *promEvery > 0 {
		flusher = summitseg.NewPromFlusher(cfg.Telemetry, *promOut, *promEvery)
	}
	if mon != nil || flusher != nil {
		var chain []summitseg.StepObserver
		if mon != nil {
			chain = append(chain, mon)
		}
		if flusher != nil {
			chain = append(chain, flusher)
		}
		cfg.StepObs = summitseg.MultiStepObserver(chain...)
	}
	if *obsAddr != "" {
		srv = summitseg.NewObsServer(summitseg.ObsServerOptions{
			Addr: *obsAddr, Telemetry: cfg.Telemetry, Monitor: mon, Health: health})
		url, err := srv.Start()
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Printf("obs: serving on %s\n", url)
	}
	if obsOn {
		flightPath := *flightOut
		cfg.OnWorld = func(w *summitseg.TransportWorld, inc int) {
			srv.TrackWorld(w, inc)
			if inc == 0 {
				return
			}
			mon.Event("restart", "", fmt.Sprintf("incarnation %d after rank failure", inc))
			if flightPath != "" {
				// Dump the pre-crash window before the new incarnation's
				// events overwrite it.
				path := fmt.Sprintf("%s.r%d", flightPath, inc)
				if err := summitseg.WriteFlightTrace(flight, path); err != nil {
					log.Printf("flight: %v", err)
				} else {
					fmt.Printf("flight: pre-restart window written to %s\n", path)
				}
			}
		}
	}
	if *flightOut != "" {
		stop := summitseg.DumpFlightOnSignal(flight, *flightOut,
			func(err error) { log.Printf("flight: %v", err) })
		defer stop()
	}

	start := time.Now()
	res, err := summitseg.Train(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if cfg.Elastic {
		// The world column makes shrink/regrow transitions visible.
		fmt.Printf("%-6s %6s %10s %8s %8s %8s\n", "epoch", "world", "loss", "mIOU", "pixAcc", "lr")
		for _, e := range res.History {
			fmt.Printf("%-6d %6d %10.4f %7.2f%% %7.2f%% %8.4f\n",
				e.Epoch, e.World, e.Loss, 100*e.MIOU, 100*e.PixelAcc, e.LR)
		}
	} else {
		fmt.Printf("%-6s %10s %8s %8s %8s\n", "epoch", "loss", "mIOU", "pixAcc", "lr")
		for _, e := range res.History {
			fmt.Printf("%-6d %10.4f %7.2f%% %7.2f%% %8.4f\n",
				e.Epoch, e.Loss, 100*e.MIOU, 100*e.PixelAcc, e.LR)
		}
	}
	fmt.Printf("final mIOU %.2f%% (fwIOU %.2f%%, pixel accuracy %.2f%%, best %.2f%% @epoch %d) in %s\n",
		100*res.FinalMIOU, 100*res.FinalFwIOU, 100*res.FinalAcc,
		100*res.BestMIOU, res.BestEpoch, time.Since(start).Round(time.Millisecond))
	if cfg.Elastic {
		if res.Shrinks > 0 || res.Regrows > 0 {
			fmt.Printf("elastic: %d shrink(s), %d regrow(s) — no checkpoint restart\n",
				res.Shrinks, res.Regrows)
		}
	} else if res.Restarts > 0 {
		fmt.Printf("recovered from %d rank failure(s) via checkpoint restart\n", res.Restarts)
	}

	fmt.Println("\nper-class IOU (eval set):")
	for k, iou := range res.FinalPerClassIOU {
		if math.IsNaN(iou) {
			continue // class absent from the eval set
		}
		fmt.Printf("  %-14s %6.2f%%\n", segdata.ClassNames[k], 100*iou)
	}

	if *traceOut != "" {
		if err := writeTo(*traceOut, cfg.Telemetry.WriteChromeTrace); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace written to %s\n", *traceOut)
	}
	if *attrOut != "" {
		// Trace-side attribution: the recorded spans (with their message
		// edges) become the happens-before DAG, and each TRAIN_STEP
		// window is decomposed into the ledger's buckets.
		l, err := summitseg.AttributeTelemetry(cfg.Telemetry)
		if err != nil {
			log.Fatal(err)
		}
		if err := writeTo(*attrOut, l.WriteLedger); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("attribution ledger written to %s\n", *attrOut)
	}
	if health != nil {
		alerts := health.Alerts()
		trips := len(alerts) + health.DroppedAlerts()
		fmt.Printf("health: %d ledger rows, %d sentinel trip(s)\n", len(health.Rows()), trips)
		if len(alerts) > 0 {
			a := alerts[0]
			fmt.Printf("health: first trip %s at layer %s rank %d step %d inc %d\n",
				a.Kind, a.Layer, a.Rank, a.Step, a.Inc)
		}
		if *healthOut != "" {
			if err := summitseg.WriteHealthLedger(health, *healthOut); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("health ledger written to %s\n", *healthOut)
		}
	}
	if *promOut != "" {
		// Atomic final flush (and surface any periodic-flush error).
		err := flusher.Flush()
		if flusher == nil {
			err = summitseg.FlushPrometheus(cfg.Telemetry, *promOut)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("metrics written to %s\n", *promOut)
	}
	if *flightOut != "" {
		if err := summitseg.WriteFlightTrace(flight, *flightOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("flight window written to %s\n", *flightOut)
	}
	if *runsDir != "" {
		chaos := ""
		if cfg.Chaos != nil {
			chaos = cfg.Chaos.String()
		}
		m := summitseg.RunManifest{
			Tool: "dlv3-train", GitRev: summitseg.GitRev(), Seed: cfg.Seed,
			Config: map[string]any{
				"world": cfg.World, "epochs": cfg.Epochs, "batch_per_rank": cfg.BatchPerRank,
				"arch": cfg.Arch, "optimizer": cfg.Optimizer, "syncbn": cfg.SyncBN,
				"base_lr": cfg.BaseLR,
			},
			ChaosSpec: chaos, SLO: mon.SLO(), AnchorImgPerSec: mon.Anchor(),
			FinalEfficiency: mon.LastEfficiency(), Restarts: res.Restarts, Alerts: mon.Alerts(),
		}
		path, err := summitseg.WriteRunManifest(*runsDir, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run manifest written to %s\n", path)
	}
}

// writeTo creates path and streams one exporter into it.
func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
