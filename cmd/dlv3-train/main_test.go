package main

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteTo(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := writeTo(path, func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "payload" {
		t.Fatalf("content %q", data)
	}
	if err := writeTo(filepath.Join(path, "nope"), func(io.Writer) error { return nil }); err == nil {
		t.Error("impossible path did not error")
	}
	boom := errors.New("boom")
	if err := writeTo(filepath.Join(dir, "fail.json"), func(io.Writer) error { return boom }); !errors.Is(err, boom) {
		t.Errorf("exporter error not propagated: %v", err)
	}
}
