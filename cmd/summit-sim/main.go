// Command summit-sim simulates distributed training of a model on a
// Summit-like machine and prints the scaling table (throughput and
// efficiency per GPU count) for a chosen MPI library and Horovod
// configuration.
//
// Usage:
//
//	summit-sim [-model dlv3plus] [-mpi mv2gdr] [-tuned] [-alg hier-2level]
//	           [-gpus 1,6,12,...]
//	           [-seed 1] [-timeline trace.json] [-prom metrics.prom]
//	           [-obs-addr 127.0.0.1:6060] [-obs-linger 30s] [-anchor 6.7]
//	           [-attr-out ledger.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"segscale/internal/asciichart"
	"segscale/pkg/summitseg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("summit-sim: ")

	modelName := flag.String("model", "dlv3plus", "model profile: dlv3plus or resnet50")
	mpiName := flag.String("mpi", "mv2gdr", "MPI profile: spectrum or mv2gdr")
	tuned := flag.Bool("tuned", false, "use the tuned Horovod knobs instead of defaults")
	algName := flag.String("alg", "", `allreduce algorithm: auto, ring, recursive-doubling, rabenseifner, hier-leader, hier-torus, hier-2level (empty = the profile's pick)`)
	gpuList := flag.String("gpus", "", "comma-separated GPU counts (default: the paper's 1,6,...,132)")
	seed := flag.Int64("seed", 1, "simulation seed")
	timelineOut := flag.String("timeline", "", "write a Chrome trace of one step to this file (largest scale)")
	promOut := flag.String("prom", "", "write simulator metrics (all scales) to this file in Prometheus text format")
	fp16 := flag.Bool("fp16", false, "enable fp16 gradient compression")
	cyclic := flag.Bool("cyclic", false, "cyclic (round-robin) rank placement instead of packed")
	withIO := flag.Bool("io", false, "model the input pipeline (GPFS + decode + prefetch)")
	chaosSeed := flag.Int64("chaos-seed", 0, "derive a chaos plan (message faults + straggler) from this seed (0 = off)")
	chaosSpec := flag.String("chaos-plan", "", `explicit chaos-plan spec, e.g. "seed=7;drop=0.01;slow=2*1.5" (overrides -chaos-seed)`)
	plot := flag.Bool("plot", false, "render a throughput bar chart after the table")
	jsonOut := flag.String("json", "", "also write results as JSON to this file")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /healthz, /readyz and /debug/pprof on this address (e.g. 127.0.0.1:6060; empty = off)")
	obsLinger := flag.Duration("obs-linger", 0, "with -obs-addr, keep serving this long after the table completes (for scraping a finished run)")
	flightOut := flag.String("flight", "", "keep a flight recorder over the simulated steps and dump its window (Chrome trace) to this file at exit")
	slo := flag.Float64("slo", summitseg.DefaultSLO, "scaling-efficiency objective for the online monitor")
	anchor := flag.Float64("anchor", 6.7, "single-GPU img/s anchor for the efficiency monitor (the paper's DLv3+ V100 calibration; 0 = self-calibrate)")
	runsDir := flag.String("runs-dir", "", "write a run manifest (config, seed, chaos, final efficiency, alerts) under this directory (empty = off)")
	attrOut := flag.String("attr-out", "", "write the largest scale's per-(step,rank) attribution ledger to this file (seg-compare's input)")
	flag.Parse()

	prof, err := summitseg.ModelByName(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	mpi, err := summitseg.MPIByName(*mpiName)
	if err != nil {
		log.Fatal(err)
	}
	hvd := summitseg.DefaultHorovod()
	if *tuned {
		hvd = summitseg.TunedHorovod()
	}
	hvd.FP16Compression = *fp16
	if *algName != "" {
		alg, err := summitseg.AlgorithmByName(*algName)
		if err != nil {
			log.Fatal(err)
		}
		hvd.Algorithm = alg
	}
	var io *summitseg.IOConfig
	if *withIO {
		c := summitseg.DefaultIO()
		io = &c
	}

	scales := summitseg.PaperScales()
	if *gpuList != "" {
		scales = scales[:0]
		for _, part := range strings.Split(*gpuList, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n <= 0 {
				log.Fatalf("bad GPU count %q", part)
			}
			scales = append(scales, n)
		}
	}

	var fixedPlan *summitseg.ChaosPlan
	if *chaosSpec != "" {
		fixedPlan, err = summitseg.ParseChaosSpec(*chaosSpec)
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("model=%s mpi=%s tuned=%v alg=%s\n", prof.Name, mpi.Name, *tuned, hvd.Algorithm)
	if fixedPlan != nil {
		fmt.Printf("chaos armed: %s\n", fixedPlan)
	} else if *chaosSeed != 0 {
		fmt.Printf("chaos armed: seed %d (plan derived per scale)\n", *chaosSeed)
	}
	fmt.Printf("%-6s %12s %10s %12s %12s\n", "GPUs", "img/s", "eff", "step", "exposed")

	obsOn := *obsAddr != "" || *flightOut != "" || *runsDir != ""
	var col *summitseg.Telemetry
	if *promOut != "" || obsOn {
		col = summitseg.NewTelemetry()
	}

	// Live observability plane: the monitor consumes every post-warmup
	// simulated step (virtual durations), so efficiency and straggler
	// gauges are live on /metrics while the table is still printing.
	var (
		mon    *summitseg.EffMonitor
		flight *summitseg.FlightRecorder
		srv    *summitseg.ObsServer
	)
	if obsOn {
		flight = col.EnableFlight(0)
		mon = summitseg.NewEffMonitor(col, summitseg.MonitorConfig{
			AnchorImgPerSec: *anchor, SLO: *slo})
	}
	// Attribution rides the largest scale (like -timeline): one ledger
	// per sweep, served live on /debug/attribution and summarised as
	// train_step_attribution_* gauges on /metrics.
	var attrRec *summitseg.AttributionRecorder
	publishAttr := func() {}
	if *attrOut != "" || obsOn {
		attrRec = summitseg.NewAttributionRecorder("perfsim", scales[len(scales)-1])
		publishAttr = summitseg.AttributionPublisher(col, attrRec)
	}
	if *obsAddr != "" {
		srv = summitseg.NewObsServer(summitseg.ObsServerOptions{
			Addr: *obsAddr, Telemetry: col, Monitor: mon, Attribution: attrRec})
		url, err := srv.Start()
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		srv.SetReady(true) // no transport world to track in a simulation
		fmt.Printf("obs: serving on %s\n", url)
	}

	var base *summitseg.SimResult
	var bars []asciichart.Bar
	var all []*summitseg.SimResult
	for i, g := range scales {
		opts := summitseg.SimOptions{GPUs: g, Model: prof, MPI: mpi, Horovod: hvd, Seed: *seed,
			CyclicPlacement: *cyclic, IO: io, Telemetry: col}
		if mon != nil {
			opts.StepObs = mon
		}
		switch {
		case fixedPlan != nil:
			opts.Chaos = fixedPlan
		case *chaosSeed != 0:
			opts.Chaos = summitseg.RandomChaosPlan(*chaosSeed, g)
		}
		if *timelineOut != "" && i == len(scales)-1 {
			opts.Timeline = &summitseg.Timeline{Enabled: true}
		}
		if attrRec != nil && i == len(scales)-1 {
			opts.Attribution = attrRec
		}
		res, err := summitseg.Simulate(opts)
		if err != nil {
			log.Fatal(err)
		}
		if opts.Attribution != nil {
			publishAttr()
		}
		if base == nil {
			base = res
		}
		fmt.Printf("%-6d %12.1f %9.1f%% %12s %12s\n",
			g, res.ImgPerSec, 100*res.EfficiencyVs(base),
			summitseg.FormatDuration(res.AvgStepSec), summitseg.FormatDuration(res.ExposedSec))
		bars = append(bars, asciichart.Bar{Label: fmt.Sprintf("%d GPUs", g), Value: res.ImgPerSec})
		all = append(all, res)
		if col != nil && *promOut != "" {
			// Crash-safe incremental export: each scale atomically
			// replaces the file, so a killed sweep keeps every completed
			// scale's metrics.
			if err := summitseg.FlushPrometheus(col, *promOut); err != nil {
				log.Fatal(err)
			}
		}
		if opts.Timeline != nil {
			f, err := os.Create(*timelineOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := opts.Timeline.WriteChromeTrace(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("timeline for %d GPUs written to %s\n", g, *timelineOut)
		}
	}
	if *plot {
		fmt.Println()
		fmt.Print(asciichart.HBar(bars, 48, "%.1f img/s"))
	}
	if col != nil && *promOut != "" {
		if err := summitseg.FlushPrometheus(col, *promOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("metrics written to %s\n", *promOut)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(all, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("results written to %s\n", *jsonOut)
	}
	if *attrOut != "" {
		if err := summitseg.WriteAttribution(attrRec, *attrOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("attribution ledger written to %s\n", *attrOut)
	}
	if *flightOut != "" {
		if err := summitseg.WriteFlightTrace(flight, *flightOut); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("flight window written to %s\n", *flightOut)
	}
	if *runsDir != "" {
		chaos := ""
		switch {
		case fixedPlan != nil:
			chaos = fixedPlan.String()
		case *chaosSeed != 0:
			chaos = fmt.Sprintf("seed=%d (derived per scale)", *chaosSeed)
		}
		m := summitseg.RunManifest{
			Tool: "summit-sim", GitRev: summitseg.GitRev(), Seed: *seed,
			Config: map[string]any{
				"model": prof.Name, "mpi": mpi.Name, "tuned": *tuned, "fp16": *fp16,
				"cyclic": *cyclic, "io": *withIO, "gpus": scales,
			},
			ChaosSpec: chaos, SLO: mon.SLO(), AnchorImgPerSec: mon.Anchor(),
			FinalEfficiency: mon.LastEfficiency(), Alerts: mon.Alerts(),
		}
		path, err := summitseg.WriteRunManifest(*runsDir, m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("run manifest written to %s\n", path)
	}
	// Completion marker the obs smoke test waits on before scraping.
	fmt.Println("summit-sim: done")
	if srv != nil && *obsLinger > 0 {
		fmt.Printf("obs: lingering %s for scrapes\n", *obsLinger)
		time.Sleep(*obsLinger)
	}
}
