// Command osu-micro prints an osu_allreduce-style latency table for
// the modelled MPI libraries on a Summit allocation — the
// microbenchmark the paper uses to contrast Spectrum MPI with
// MVAPICH2-GDR before the end-to-end runs.
//
// Usage:
//
//	osu-micro [-nodes 2] [-mpi spectrum,mv2gdr]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"segscale/pkg/summitseg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("osu-micro: ")

	nodes := flag.Int("nodes", 2, "number of Summit nodes (6 GPUs each)")
	mpis := flag.String("mpi", "spectrum,mv2gdr", "comma-separated MPI profiles")
	op := flag.String("op", "allreduce", "collective: allreduce, bcast, allgather, reduce-scatter")
	flag.Parse()

	names := strings.Split(*mpis, ",")
	sizes := summitseg.OSUMessageSizes()

	tables := make(map[string][]summitseg.LatencyRow)
	for _, name := range names {
		mpi, err := summitseg.MPIByName(strings.TrimSpace(name))
		if err != nil {
			log.Fatal(err)
		}
		rows, err := summitseg.CollectiveLatency(*op, mpi, *nodes, sizes)
		if err != nil {
			log.Fatal(err)
		}
		tables[mpi.Name] = rows
	}

	fmt.Printf("# OSU-style %s latency, %d nodes × 6 GPUs\n", *op, *nodes)
	fmt.Printf("%-12s", "bytes")
	for _, name := range names {
		fmt.Printf(" %14s", strings.TrimSpace(name)+" (µs)")
	}
	fmt.Println()
	for i, n := range sizes {
		fmt.Printf("%-12d", n)
		for _, name := range names {
			fmt.Printf(" %14.2f", tables[strings.TrimSpace(name)][i].LatencyUS)
		}
		fmt.Println()
	}
}
