// Command segbench is the repository's performance-baseline harness.
// It measures the hot kernels (tiled vs reference matmul at the
// DeepLab head's GEMM shape), the workspace-pooled convolution, a full
// single-rank training step (img/s and allocs/step), and the
// performance simulator, then writes the results as a machine-readable
// JSON report (BENCH_kernels.json at the repo root is the committed
// baseline).
//
// Modes:
//
//	segbench                         # full run, report to stdout
//	segbench -o BENCH_kernels.json   # regenerate the committed baseline
//	segbench -fast                   # single-iteration timings (CI)
//	segbench -fast -check BENCH_kernels.json
//	                                 # CI gate: schema/keys must match the
//	                                 # baseline and allocation counts must
//	                                 # not regress; timing deltas are
//	                                 # advisory only (CI machines vary,
//	                                 # allocation counts do not). Entries
//	                                 # whose baseline ran at a different
//	                                 # GOMAXPROCS are skipped, not compared.
//
// Every entry pins its own GOMAXPROCS — serial kernels at 1, the _mp4
// variants at 4 — so the committed baseline is comparable on any
// runner shape and -check gates both the serial and the parallel
// paths instead of skipping whichever the machine doesn't match.
//
// Benchmark keys and shapes are identical in both modes — -fast only
// reduces timing iterations — so a -fast run is always comparable to a
// full-mode baseline on everything -check enforces.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"segscale/internal/deeplab"
	"segscale/internal/fp16"
	"segscale/internal/horovod"
	"segscale/internal/model"
	"segscale/internal/mpiprofile"
	"segscale/internal/netmodel"
	"segscale/internal/nn"
	"segscale/internal/perfsim"
	"segscale/internal/segdata"
	"segscale/internal/tensor"
)

// schemaVersion is bumped whenever the report layout or the benchmark
// set changes incompatibly; -check refuses to compare across versions.
// v2: per-entry gomaxprocs.
// v3: fp16 encode/decode wire-cast kernels.
// v4: serial entries pinned to GOMAXPROCS=1, _mp4 entries pinned to 4.
const schemaVersion = 4

// mpProcs is the parallelism the _mp4 entries pin. Four workers is
// enough to exercise the tensor.Parallel fan-out path (closure +
// goroutine per worker per launch) without depending on the runner's
// core count.
const mpProcs = 4

// Entry is one benchmark's measurements.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// GOMAXPROCS the timing loop ran at. -check compares an entry
	// against its baseline only when these match: timings from
	// different parallelism are different experiments, not deltas.
	GOMAXPROCS int `json:"gomaxprocs"`
	// ImgPerSec is set for benchmarks with a natural image-throughput
	// reading: measured for the training step, simulated for perfsim.
	ImgPerSec float64 `json:"img_per_sec,omitempty"`
}

// Report is the file format of BENCH_kernels.json.
type Report struct {
	Schema     int                `json:"schema"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	GoVersion  string             `json:"go_version"`
	Fast       bool               `json:"fast"`
	Benchmarks map[string]Entry   `json:"benchmarks"`
	Derived    map[string]float64 `json:"derived"`
}

// withProcs pins GOMAXPROCS around one benchmark and restores it.
// Pinning is what makes the committed baseline machine-independent:
// every entry runs at its recorded parallelism regardless of the
// runner's core count, so -check compares instead of skipping.
func withProcs(procs int, fn func() Entry) Entry {
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	return fn()
}

// bench times fn over iters runs (after one untimed warmup) and counts
// steady-state allocations at the pinned GOMAXPROCS. At one proc the
// count comes from testing.AllocsPerRun — exact and machine-
// independent. At higher parallelism AllocsPerRun would pin back to 1
// and miss the very thing the _mp4 entries exist to pin (per-launch
// closures and goroutine spawns in tensor.Parallel), so the parallel
// count is a Mallocs delta averaged over several runs; check() gives
// those entries proportional slack because goroutine-stack reuse makes
// the count approximate, not exact.
func bench(iters int, fn func()) Entry {
	fn() // warmup: grow arenas, fault in scratch pools
	var allocs float64
	if runtime.GOMAXPROCS(0) == 1 {
		allocs = testing.AllocsPerRun(1, fn)
	} else {
		allocs = allocsParallel(fn)
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return Entry{
		NsPerOp:     float64(time.Since(start).Nanoseconds()) / float64(iters),
		AllocsPerOp: allocs,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
}

// allocsParallel measures steady-state allocations without changing
// GOMAXPROCS: one extra warmup run to populate the goroutine free
// list, then a Mallocs delta averaged over a batch of runs.
func allocsParallel(fn func()) float64 {
	const runs = 10
	fn()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / runs
}

// matmulDims is the DeepLab-head GEMM the tentpole kernel is judged
// on: 256 filters × (256 channels · 3·3 taps) × 33·33 spatial.
const mmM, mmK, mmN = 256, 2304, 1089

func benchMatmul(iters int, tiled bool) Entry {
	a := tensor.New(mmM, mmK)
	b := tensor.New(mmK, mmN)
	c := tensor.New(mmM, mmN)
	fill(a.Data, 1)
	fill(b.Data, 2)
	if tiled {
		return bench(iters, func() { tensor.MatMulInto(c, a, b, false) })
	}
	return bench(iters, func() { tensor.MatMulRefInto(c, a, b, false) })
}

func benchConv(iters int, backward bool) Entry {
	ws := tensor.NewWorkspace()
	x := tensor.New(2, 32, 33, 33)
	w := tensor.New(64, 32, 3, 3)
	fill(x.Data, 3)
	fill(w.Data, 4)
	spec := tensor.ConvSpec{Pad: 1}
	out := tensor.Conv2DWS(x, w, spec, ws)
	dout := tensor.New(out.Shape...)
	fill(dout.Data, 5)
	if backward {
		return bench(iters, func() {
			ws.Reset()
			tensor.Conv2DBackwardWS(x, w, dout, spec, ws)
		})
	}
	return bench(iters, func() {
		ws.Reset()
		tensor.Conv2DWS(x, w, spec, ws)
	})
}

// benchTrainStep measures one full single-rank training step —
// dropout reseed, forward, loss, backward, optimiser update, gradient
// zeroing — with the workspace threaded through, the configuration the
// trainer actually runs.
func benchTrainStep(iters int) Entry {
	cfg := deeplab.DefaultConfig()
	net := deeplab.New(cfg)
	ws := tensor.NewWorkspace()
	net.SetWorkspace(ws)
	params := net.Params()
	opt := nn.NewSGD(0.05)
	const batch = 4
	ds := segdata.New(batch, cfg.InputSize, cfg.InputSize, 7)
	x, labels := ds.Batch([]int{0, 1, 2, 3})
	e := bench(iters, func() {
		ws.Reset()
		net.ReseedDropout(3)
		net.Loss(x, labels, segdata.IgnoreLabel, true)
		opt.Step(params)
		nn.ZeroGrads(params)
	})
	e.ImgPerSec = batch / (e.NsPerOp / 1e9)
	return e
}

// benchPerfsim runs the 132-GPU simulator; NsPerOp is the simulator's
// own execution cost, ImgPerSec the simulated training throughput.
func benchPerfsim(iters int) Entry {
	cfg := perfsim.Config{
		GPUs:    132,
		Model:   model.DLv3Plus(),
		MPI:     mpiprofile.MV2GDR(),
		Horovod: horovod.Default(),
		Seed:    1,
	}
	var simImgs float64
	e := bench(iters, func() {
		res, err := perfsim.Run(cfg)
		if err != nil {
			fatalf("perfsim: %v", err)
		}
		simImgs = res.ImgPerSec
	})
	e.ImgPerSec = simImgs
	return e
}

// benchPerfsimHier runs the 1056-rank (176-node) sweep with the
// topology-aware two-level allreduce — the scale the hierarchical path
// exists for. The allocation budget pins the simulator's fusion-plan
// and node-partition caches: a per-step miss at 1056 ranks would blow
// the count immediately.
func benchPerfsimHier(iters int) Entry {
	hvd := horovod.Default()
	hvd.Algorithm = netmodel.AlgHierTwoLevel
	cfg := perfsim.Config{
		GPUs:    1056,
		Model:   model.DLv3Plus(),
		MPI:     mpiprofile.MV2GDR(),
		Horovod: hvd,
		Seed:    1,
	}
	var simImgs float64
	e := bench(iters, func() {
		res, err := perfsim.Run(cfg)
		if err != nil {
			fatalf("perfsim hier: %v", err)
		}
		simImgs = res.ImgPerSec
	})
	e.ImgPerSec = simImgs
	return e
}

// fp16Elems is the wire-buffer size the compression kernels are
// judged at: the fusion buffer's worth of gradient elements
// (16 MiB of fp32, the Horovod default fusion threshold).
const fp16Elems = 4 << 20

// benchFP16Encode measures the binary16 pack cast over one fusion
// buffer. The kernel must be allocation-free: it runs once per
// fused group per step on the allreduce critical path.
func benchFP16Encode(iters int) Entry {
	src := make([]float32, fp16Elems)
	dst := make([]uint16, fp16Elems)
	fill(src, 6)
	return bench(iters, func() {
		if err := fp16.Encode(src, dst); err != nil {
			fatalf("fp16 encode: %v", err)
		}
	})
}

// benchFP16Decode measures the matching unpack cast.
func benchFP16Decode(iters int) Entry {
	f := make([]float32, fp16Elems)
	h := make([]uint16, fp16Elems)
	fill(f, 7)
	if err := fp16.Encode(f, h); err != nil {
		fatalf("fp16 encode: %v", err)
	}
	return bench(iters, func() {
		if err := fp16.Decode(h, f); err != nil {
			fatalf("fp16 decode: %v", err)
		}
	})
}

func fill(d []float32, seed uint32) {
	s := seed
	for i := range d {
		s = s*1664525 + 1013904223 // LCG: deterministic, no rand import
		d[i] = float32(s>>8)/float32(1<<24) - 0.5
	}
}

func run(fast bool) *Report {
	iters := 5
	if fast {
		iters = 1
	}
	r := &Report{
		Schema:     schemaVersion,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Fast:       fast,
		Benchmarks: map[string]Entry{},
		Derived:    map[string]float64{},
	}
	r.Benchmarks["matmul_tiled_256x2304x1089"] = withProcs(1, func() Entry { return benchMatmul(iters, true) })
	r.Benchmarks["matmul_ref_256x2304x1089"] = withProcs(1, func() Entry { return benchMatmul(iters, false) })
	r.Benchmarks["conv2d_fwd_ws"] = withProcs(1, func() Entry { return benchConv(iters, false) })
	r.Benchmarks["conv2d_bwd_ws"] = withProcs(1, func() Entry { return benchConv(iters, true) })
	r.Benchmarks["train_step_rank0"] = withProcs(1, func() Entry { return benchTrainStep(iters) })
	r.Benchmarks["perfsim_132gpu"] = withProcs(1, func() Entry { return benchPerfsim(iters) })
	r.Benchmarks["perfsim_1056gpu_hier"] = withProcs(1, func() Entry { return benchPerfsimHier(iters) })
	r.Benchmarks["fp16_encode_4m"] = withProcs(1, func() Entry { return benchFP16Encode(iters) })
	r.Benchmarks["fp16_decode_4m"] = withProcs(1, func() Entry { return benchFP16Decode(iters) })

	// Multi-core variants of the kernels with a tensor.Parallel fan-out
	// path. These pin the parallel path's allocation shape (closures and
	// goroutine spawns per launch) alongside the serial entries' exact
	// zero/low counts.
	r.Benchmarks["matmul_tiled_256x2304x1089_mp4"] = withProcs(mpProcs, func() Entry { return benchMatmul(iters, true) })
	r.Benchmarks["matmul_ref_256x2304x1089_mp4"] = withProcs(mpProcs, func() Entry { return benchMatmul(iters, false) })
	r.Benchmarks["conv2d_fwd_ws_mp4"] = withProcs(mpProcs, func() Entry { return benchConv(iters, false) })
	r.Benchmarks["conv2d_bwd_ws_mp4"] = withProcs(mpProcs, func() Entry { return benchConv(iters, true) })
	r.Benchmarks["train_step_rank0_mp4"] = withProcs(mpProcs, func() Entry { return benchTrainStep(iters) })

	r.Derived["matmul_speedup_vs_ref"] =
		r.Benchmarks["matmul_ref_256x2304x1089"].NsPerOp /
			r.Benchmarks["matmul_tiled_256x2304x1089"].NsPerOp
	r.Derived["train_allocs_per_step"] = r.Benchmarks["train_step_rank0"].AllocsPerOp
	// Parallel speedups are advisory like all timings: on a single-core
	// runner they sit near 1.0; a multi-core regeneration pins the real
	// fan-out win.
	r.Derived["matmul_tiled_mp4_speedup"] =
		r.Benchmarks["matmul_tiled_256x2304x1089"].NsPerOp /
			r.Benchmarks["matmul_tiled_256x2304x1089_mp4"].NsPerOp
	r.Derived["train_step_mp4_speedup"] =
		r.Benchmarks["train_step_rank0"].NsPerOp /
			r.Benchmarks["train_step_rank0_mp4"].NsPerOp
	return r
}

// allocSlack absorbs the ±1 rounding AllocsPerRun can exhibit on
// counts near zero; a leaked activation costs far more than one.
const allocSlack = 2

// check compares cur against the committed baseline. Schema and the
// benchmark key set must match exactly, and no benchmark may allocate
// more than its baseline plus slack. Timing deltas are printed but
// never fail the check.
func check(cur *Report, baselinePath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	if base.Schema != cur.Schema {
		return fmt.Errorf("schema mismatch: baseline %d, current %d — regenerate the baseline (make bench-json)", base.Schema, cur.Schema)
	}
	for name := range base.Benchmarks {
		if _, ok := cur.Benchmarks[name]; !ok {
			return fmt.Errorf("benchmark %q in baseline but not produced by this binary", name)
		}
	}
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			return fmt.Errorf("benchmark %q not in baseline — regenerate it (make bench-json)", name)
		}
	}
	var failed bool
	skipped := 0
	for name, b := range base.Benchmarks {
		c := cur.Benchmarks[name]
		if b.GOMAXPROCS != c.GOMAXPROCS {
			// A baseline timed at different parallelism is a different
			// experiment; comparing against it would gate on the
			// machine shape, not the code.
			skipped++
			fmt.Fprintf(os.Stderr, "skip %s: baseline ran at GOMAXPROCS=%d, this machine at %d (not comparable)\n",
				name, b.GOMAXPROCS, c.GOMAXPROCS)
			continue
		}
		slack := float64(allocSlack)
		if b.GOMAXPROCS > 1 {
			// Parallel entries count goroutine spawns, which depend on
			// free-list state; their gate is proportional, catching a
			// leaked-per-launch allocation but not scheduler noise.
			slack += 0.25 * b.AllocsPerOp
		}
		if c.AllocsPerOp > b.AllocsPerOp+slack {
			failed = true
			fmt.Fprintf(os.Stderr, "FAIL %s: allocs/op %.0f, baseline %.0f\n",
				name, c.AllocsPerOp, b.AllocsPerOp)
		}
		if b.NsPerOp > 0 {
			fmt.Fprintf(os.Stderr, "time %s: %.2fms vs baseline %.2fms (%+.1f%%, advisory)\n",
				name, c.NsPerOp/1e6, b.NsPerOp/1e6, 100*(c.NsPerOp-b.NsPerOp)/b.NsPerOp)
		}
	}
	if skipped > 0 {
		fmt.Fprintf(os.Stderr, "segbench: %d/%d entries skipped on GOMAXPROCS mismatch\n",
			skipped, len(base.Benchmarks))
	}
	if failed {
		return fmt.Errorf("allocation regression against %s", baselinePath)
	}
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "segbench: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	fast := flag.Bool("fast", false, "single-iteration timings (CI mode; allocation counts are unaffected)")
	out := flag.String("o", "", "write the JSON report to this file instead of stdout")
	baseline := flag.String("check", "", "compare against a committed baseline report; non-zero exit on schema/key mismatch or allocation regression")
	flag.Parse()

	r := run(*fast)
	enc, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "segbench: wrote %s\n", *out)
	} else {
		os.Stdout.Write(enc)
	}
	if *baseline != "" {
		if err := check(r, *baseline); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintln(os.Stderr, "segbench: baseline check passed")
	}
}
