package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// fastReport runs the full -fast benchmark set once per test binary;
// the harness itself is what is under test, not the timings.
var fastReport *Report

func report(t *testing.T) *Report {
	t.Helper()
	if fastReport == nil {
		fastReport = run(true)
	}
	return fastReport
}

func writeReport(t *testing.T, r *Report) string {
	t.Helper()
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// clone deep-copies a report so tests can corrupt baselines freely.
func clone(r *Report) *Report {
	out := *r
	out.Benchmarks = map[string]Entry{}
	for k, v := range r.Benchmarks {
		out.Benchmarks[k] = v
	}
	out.Derived = map[string]float64{}
	for k, v := range r.Derived {
		out.Derived[k] = v
	}
	return &out
}

func TestRunFastReportShape(t *testing.T) {
	r := report(t)
	if r.Schema != schemaVersion {
		t.Errorf("schema %d, want %d", r.Schema, schemaVersion)
	}
	if !r.Fast {
		t.Error("fast flag not recorded")
	}
	for _, name := range []string{
		"matmul_tiled_256x2304x1089", "matmul_ref_256x2304x1089",
		"conv2d_fwd_ws", "conv2d_bwd_ws", "train_step_rank0", "perfsim_132gpu",
		"perfsim_1056gpu_hier",
	} {
		e, ok := r.Benchmarks[name]
		if !ok {
			t.Errorf("benchmark %q missing", name)
			continue
		}
		if e.NsPerOp <= 0 {
			t.Errorf("%s: ns/op %v", name, e.NsPerOp)
		}
		if e.GOMAXPROCS != runtime.GOMAXPROCS(0) {
			t.Errorf("%s: gomaxprocs %d, want ambient %d", name, e.GOMAXPROCS, runtime.GOMAXPROCS(0))
		}
	}
	if r.Benchmarks["train_step_rank0"].ImgPerSec <= 0 ||
		r.Benchmarks["perfsim_132gpu"].ImgPerSec <= 0 {
		t.Error("img/s readings missing")
	}
	if hier := r.Benchmarks["perfsim_1056gpu_hier"].ImgPerSec; hier <= r.Benchmarks["perfsim_132gpu"].ImgPerSec {
		t.Errorf("1056-rank hier throughput %.1f img/s not above 132-GPU flat %.1f", hier, r.Benchmarks["perfsim_132gpu"].ImgPerSec)
	}
	if r.Derived["matmul_speedup_vs_ref"] <= 0 {
		t.Error("derived speedup missing")
	}
}

func TestCheckAgainstSelfPasses(t *testing.T) {
	r := report(t)
	if err := check(r, writeReport(t, r)); err != nil {
		t.Fatalf("self-check: %v", err)
	}
}

func TestCheckFlagsAllocRegression(t *testing.T) {
	r := report(t)
	base := clone(r)
	e := base.Benchmarks["train_step_rank0"]
	e.AllocsPerOp -= allocSlack + 1 // current now exceeds baseline + slack
	base.Benchmarks["train_step_rank0"] = e
	if err := check(r, writeReport(t, base)); err == nil {
		t.Fatal("allocation regression not flagged")
	}
}

func TestCheckRefusesSchemaMismatch(t *testing.T) {
	r := report(t)
	base := clone(r)
	base.Schema = schemaVersion - 1
	if err := check(r, writeReport(t, base)); err == nil {
		t.Fatal("schema mismatch not refused")
	}
}

func TestCheckRefusesKeyDrift(t *testing.T) {
	r := report(t)
	extra := clone(r)
	extra.Benchmarks["vanished_benchmark"] = Entry{GOMAXPROCS: 1}
	if err := check(r, writeReport(t, extra)); err == nil {
		t.Fatal("baseline-only benchmark not refused")
	}
	missing := clone(r)
	delete(missing.Benchmarks, "conv2d_fwd_ws")
	if err := check(r, writeReport(t, missing)); err == nil {
		t.Fatal("unbaselined benchmark not refused")
	}
}

func TestCheckSkipsGOMAXPROCSMismatch(t *testing.T) {
	r := report(t)
	base := clone(r)
	for name, e := range base.Benchmarks {
		e.GOMAXPROCS++ // a different machine shape
		e.AllocsPerOp = 0
		base.Benchmarks[name] = e
	}
	// Every entry would fail the allocation gate if compared; all must
	// be skipped instead.
	if err := check(r, writeReport(t, base)); err != nil {
		t.Fatalf("mismatched-GOMAXPROCS baseline compared anyway: %v", err)
	}
}

func TestCheckMissingAndBadBaseline(t *testing.T) {
	r := report(t)
	if err := check(r, filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing baseline not an error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := check(r, bad); err == nil {
		t.Fatal("unparseable baseline not an error")
	}
}
