// Command seglint is the repository's multichecker: it runs every
// custom analysis pass that guards simulator determinism and API
// hygiene over the packages named on the command line.
//
// Usage:
//
//	go run ./cmd/seglint ./...                # lint the whole module
//	go run ./cmd/seglint -json ./...          # machine-readable findings
//	go run ./cmd/seglint -list                # describe the passes
//	go run ./cmd/seglint -facts ./...         # dump the cross-function fact database
//	go run ./cmd/seglint -suppressions ./...  # also fail reason-less suppressions
//	go run ./cmd/seglint -prom m.prom         # validate an exported metrics file
//
// -prom checks a Prometheus text-format export (what -prom flags on
// the binaries and the /metrics endpoint emit) against the same
// naming convention the metricname pass enforces at registration
// sites — closing the loop from source to scrape.
//
// -facts prints one line per function carrying cross-function facts
// (hot-path membership, allocation counts, map-order sensitivity,
// workspace vend/retain summaries) in a stable order, for debugging
// why a hotalloc/maporder/wsretain finding did or did not propagate.
//
// -suppressions additionally reports every //seglint:ignore /
// file-ignore / package-ignore directive that carries no reason, as
// unsuppressible "suppressreason" findings — CI runs this mode so
// every suppression in the tree stays justified.
//
// Exit status: 0 when clean, 1 when findings remain, 2 on internal
// error. Findings can be suppressed in source with recorded
// justifications — see docs/LINTING.md for the syntax.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"segscale/internal/analysis"
	"segscale/internal/analysis/passes/hotalloc"
	"segscale/internal/analysis/passes/maporder"
	"segscale/internal/analysis/passes/metricname"
	"segscale/internal/analysis/passes/nopanic"
	"segscale/internal/analysis/passes/nowallclock"
	"segscale/internal/analysis/passes/seededrand"
	"segscale/internal/analysis/passes/unitsuffix"
	"segscale/internal/analysis/passes/wsretain"
	"segscale/internal/telemetry"
)

// analyzers is the multichecker's pass registry; new passes register
// here and in docs/LINTING.md.
var analyzers = []*analysis.Analyzer{
	nowallclock.Analyzer,
	seededrand.Analyzer,
	unitsuffix.Analyzer,
	nopanic.Analyzer,
	metricname.Analyzer,
	hotalloc.Analyzer,
	maporder.Analyzer,
	wsretain.Analyzer,
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	facts := flag.Bool("facts", false, "dump the cross-function fact database instead of linting")
	checkSup := flag.Bool("suppressions", false, "also fail //seglint:ignore directives that carry no reason")
	promFile := flag.String("prom", "", "validate a Prometheus text-format metrics file instead of linting packages")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: seglint [-json] [-list] [-facts] [-suppressions] [-prom file] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	var findings []analysis.Finding
	var err error
	if *promFile != "" {
		findings, err = lintProm(*promFile)
	} else {
		patterns := flag.Args()
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		findings, err = lint(patterns, *facts, *checkSup)
		if err == nil && *facts {
			return
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "seglint:", err)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []analysis.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "seglint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "seglint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// lintProm validates every metric name in a Prometheus text-format
// file against the registration-site convention. Histogram series
// suffixes (_bucket, _sum, _count) are stripped first: they belong to
// the exposition format, not the metric's registered name.
func lintProm(path string) ([]analysis.Finding, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var findings []analysis.Finding
	seen := map[string]bool{}
	report := func(line int, name, msg string) {
		if seen[name] {
			return // one finding per metric, not per sample
		}
		seen[name] = true
		findings = append(findings, analysis.Finding{
			Analyzer: "metricname", File: path, Line: line, Col: 1,
			Message: fmt.Sprintf("metric %q %s", name, msg),
		})
	}
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		name := promSampleName(sc.Text())
		if name == "" {
			continue
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base = strings.TrimSuffix(base, suf)
		}
		if !telemetry.ValidMetricName(base) {
			report(line, name, fmt.Sprintf(
				"violates the naming convention: snake_case with a unit suffix from %v",
				telemetry.MetricSuffixes))
		}
	}
	// Same total order as the source-lint path, so -json/text output
	// is byte-stable however the input was produced.
	analysis.SortFindings(findings)
	return findings, sc.Err()
}

// promSampleName extracts the metric name from one exposition line:
// the token before '{', ' ', or '\t' on sample lines, or the second
// token of "# TYPE"/"# HELP" comments ("" for anything else).
func promSampleName(s string) string {
	s = strings.TrimSpace(s)
	if s == "" {
		return ""
	}
	if strings.HasPrefix(s, "#") {
		fields := strings.Fields(s)
		if len(fields) >= 3 && (fields[1] == "TYPE" || fields[1] == "HELP") {
			return fields[2]
		}
		return ""
	}
	if i := strings.IndexAny(s, "{ \t"); i > 0 {
		return s[:i]
	}
	return ""
}

func lint(patterns []string, dumpFacts, checkSup bool) ([]analysis.Finding, error) {
	root, err := findModuleRoot()
	if err != nil {
		return nil, err
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		return nil, err
	}
	cwd, err := os.Getwd()
	if err != nil {
		cwd = root
	}
	paths, err := loader.Expand(rebase(patterns, root, cwd))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no packages match %v", patterns)
	}
	var pkgs []*analysis.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	// The fact database spans everything the loader has seen — the
	// lint targets plus every repo package they transitively import —
	// so cross-package facts are complete even when linting a subtree.
	db := analysis.BuildFactDB(loader.Loaded())
	if dumpFacts {
		db.Dump(os.Stdout)
		return nil, nil
	}
	return analysis.RunWith(pkgs, analyzers, analysis.Options{
		RelTo:             cwd,
		Facts:             db,
		CheckSuppressions: checkSup,
	})
}

// rebase makes relative patterns cwd-relative, matching the go tool:
// running seglint from a subdirectory with "." or "./..." lints that
// directory's subtree, not the module root's.
func rebase(patterns []string, root, cwd string) []string {
	rel, err := filepath.Rel(root, cwd)
	if err != nil || rel == "." || strings.HasPrefix(rel, "..") {
		return patterns
	}
	out := make([]string, len(patterns))
	for i, p := range patterns {
		switch {
		case p == "." || p == "./":
			out[i] = "./" + filepath.ToSlash(rel)
		default:
			if rest, ok := strings.CutPrefix(p, "./"); ok {
				out[i] = "./" + filepath.ToSlash(rel) + "/" + rest
			} else {
				out[i] = p
			}
		}
	}
	return out
}

// findModuleRoot walks upward from the working directory to the
// nearest go.mod, so seglint works from any subdirectory.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
