package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLintPromFlagsBadNames(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.prom")
	src := `# HELP perfsim_step_seconds step wall time
# TYPE perfsim_step_seconds histogram
perfsim_step_seconds_bucket{le="0.1"} 3
perfsim_step_seconds_sum 0.21
perfsim_step_seconds_count 3
perfsim_step_p99_seconds 0.09
# TYPE BadCamelCase gauge
BadCamelCase 1
no_unit_suffix{rank="0"} 2
no_unit_suffix{rank="1"} 3

# a stray comment
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := lintProm(path)
	if err != nil {
		t.Fatal(err)
	}
	// Histogram series suffixes are stripped before validation, the
	// quantile gauge carries a real unit suffix, and each offender is
	// reported once however many samples it has.
	if len(findings) != 2 {
		t.Fatalf("findings = %d, want 2: %+v", len(findings), findings)
	}
	for _, f := range findings {
		if f.Analyzer != "metricname" || f.File != path {
			t.Errorf("finding metadata wrong: %+v", f)
		}
	}
	if _, err := lintProm(filepath.Join(t.TempDir(), "nope.prom")); err == nil {
		t.Error("missing file did not error")
	}
}

func TestPromSampleName(t *testing.T) {
	cases := map[string]string{
		"metric_seconds 1":                "metric_seconds",
		`metric_seconds{rank="0"} 2`:      "metric_seconds",
		"metric_seconds\t3":               "metric_seconds",
		"# TYPE metric_seconds histogram": "metric_seconds",
		"# HELP metric_seconds help text": "metric_seconds",
		"# EOF":                           "",
		"# plain comment":                 "",
		"":                                "",
		"   ":                             "",
	}
	for line, want := range cases {
		if got := promSampleName(line); got != want {
			t.Errorf("promSampleName(%q) = %q, want %q", line, got, want)
		}
	}
}

func TestRebase(t *testing.T) {
	root := "/repo"
	sub := "/repo/internal/x"
	cases := []struct {
		cwd  string
		in   []string
		want []string
	}{
		{sub, []string{"."}, []string{"./internal/x"}},
		{sub, []string{"./..."}, []string{"./internal/x/..."}},
		{sub, []string{"segscale/internal/y"}, []string{"segscale/internal/y"}},
		{root, []string{"./..."}, []string{"./..."}}, // cwd == root: untouched
		{"/elsewhere", []string{"."}, []string{"."}}, // outside root: untouched
	}
	for _, c := range cases {
		got := rebase(c.in, root, c.cwd)
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("rebase(%v, root, %q) = %v, want %v", c.in, c.cwd, got, c.want)
			}
		}
	}
}
