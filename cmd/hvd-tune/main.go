// Command hvd-tune runs the paper's staged tuning methodology at a
// given scale and prints the evaluation trace, the best configuration
// (as HOROVOD_*/MV2_* environment assignments ready for a job
// script), and the headline improvement over default Horovod.
//
// Usage:
//
//	hvd-tune [-gpus 132] [-model dlv3plus] [-seed 1] [-trace]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"segscale/internal/core"
	"segscale/internal/jobscript"
	"segscale/pkg/summitseg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hvd-tune: ")

	gpus := flag.Int("gpus", 132, "GPU count to tune at")
	modelName := flag.String("model", "dlv3plus", "model profile")
	seed := flag.Int64("seed", 1, "simulation seed")
	showTrace := flag.Bool("trace", false, "print every evaluation")
	jobOut := flag.String("jobscript", "", "write an LSF/jsrun batch script for the best config to this file")
	flag.Parse()

	prof, err := summitseg.ModelByName(*modelName)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := summitseg.Tune(*gpus, prof, *seed)
	if err != nil {
		log.Fatal(err)
	}

	if *showTrace {
		fmt.Printf("%-18s %10s %8s   %s\n", "STAGE", "img/s", "eff", "candidate")
		for _, ev := range rep.Trace {
			fmt.Printf("%-18s %10.1f %7.1f%%   %s\n",
				ev.Stage, ev.Result.ImgPerSec, 100*ev.Efficiency, ev.Candidate.Label())
		}
		fmt.Println()
	}

	fmt.Printf("tuning at %d GPUs on %s (%d simulator runs)\n", *gpus, prof.Name, rep.Evals)
	fmt.Printf("baseline (default Horovod + Spectrum): %8.1f img/s, %5.1f%% efficiency\n",
		rep.Baseline.Result.ImgPerSec, 100*rep.Baseline.Efficiency)
	fmt.Printf("best:   %s\n", rep.Best.Candidate.Label())
	fmt.Printf("        %8.1f img/s, %5.1f%% efficiency\n", rep.Best.Result.ImgPerSec, 100*rep.Best.Efficiency)
	fmt.Printf("improvement: %+.1f%% efficiency, %.2f× speedup\n",
		100*(rep.Improvement()-1), rep.Speedup())
	grid := core.DefaultSpace().GridSize()
	fmt.Printf("search cost if run on the real machine: %.1f GPU-hours (%d evals; exhaustive grid: %d)\n",
		rep.CostGPUHours(), rep.Evals, grid)
	fmt.Println("\njob-script environment for the best configuration:")
	for _, e := range rep.Best.Candidate.Horovod.Env() {
		fmt.Println("  export " + e)
	}
	for _, e := range rep.Best.Candidate.MPI.Env() {
		fmt.Println("  export " + e)
	}

	if *jobOut != "" {
		job := jobscript.FromConfig("dlv3-tuned", *gpus, rep.Best.Candidate.MPI, rep.Best.Candidate.Horovod)
		script, err := job.LSF()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jobOut, []byte(script), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nbatch script written to %s (bsub %s)\n", *jobOut, *jobOut)
	}
}
