// Command seg-viz renders qualitative segmentation results: it trains
// the mini DeepLab-v3+ briefly on the synthetic VOC-21 dataset, then
// writes (input | ground truth | prediction) triptych PNGs for a few
// evaluation samples — the visual-results figure of segmentation
// papers.
//
// Usage:
//
//	seg-viz [-out viz] [-n 6] [-epochs 20] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"segscale/internal/deeplab"
	"segscale/internal/nn"
	"segscale/internal/segdata"
	"segscale/internal/segviz"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("seg-viz: ")

	out := flag.String("out", "viz", "output directory")
	n := flag.Int("n", 6, "samples to render")
	epochs := flag.Int("epochs", 20, "training epochs before rendering")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	cfg := deeplab.DefaultConfig()
	cfg.Seed = *seed
	model := deeplab.New(cfg)
	trainSet := segdata.New(64, cfg.InputSize, cfg.InputSize, *seed)
	evalSet := segdata.New(*n, cfg.InputSize, cfg.InputSize, *seed+1_000_000)

	// A compact single-process training loop (the full distributed
	// trainer lives in internal/train; rendering only needs weights).
	opt := nn.NewSGD(0.05)
	sched := nn.NewPolySchedule(0.05, *epochs*16, *epochs, 1)
	step := 0
	for e := 0; e < *epochs; e++ {
		var lossSum float64
		for lo := 0; lo < trainSet.Len(); lo += 4 {
			hi := min(lo+4, trainSet.Len())
			ids := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				ids = append(ids, i)
			}
			x, labels := trainSet.Batch(ids)
			lossSum += model.Loss(x, labels, segdata.IgnoreLabel, true)
			opt.SetLR(sched.LR(step))
			opt.Step(model.Params())
			nn.ZeroGrads(model.Params())
			step++
		}
		fmt.Printf("epoch %2d loss %.4f\n", e, lossSum/float64((trainSet.Len()+3)/4))
	}

	for i := 0; i < evalSet.Len(); i++ {
		img, gt := evalSet.Sample(i)
		x, _ := evalSet.Batch([]int{i})
		pred := model.Predict(x)
		path := filepath.Join(*out, fmt.Sprintf("sample%02d.png", i))
		if err := segviz.WritePNG(path, segviz.Triptych(img, gt, pred)); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}
	fmt.Println("columns: input | ground truth | prediction (white = void)")
}
